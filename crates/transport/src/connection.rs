//! The connection abstraction shared by all transports.
//!
//! MRNet processes exchange *frames*: opaque byte buffers that the core
//! library fills with encoded packet buffers or control messages. A
//! [`Connection`] is one bidirectional, ordered, reliable frame pipe —
//! the role a TCP socket plays in the original system. The local
//! (in-process) and TCP transports both implement this trait, so the
//! core's internal-process event loop is transport-agnostic.

use std::time::Duration;

use bytes::Bytes;

use crate::error::Result;

/// A bidirectional, ordered, reliable frame pipe between two processes.
///
/// Implementations are `Sync`: the receive side may be pumped by one
/// thread while another sends.
pub trait Connection: Send + Sync {
    /// Sends one frame. Never blocks on peer consumption (frames are
    /// buffered), but fails once the peer has hung up.
    fn send(&self, frame: Bytes) -> Result<()>;

    /// Receives the next frame, blocking until one arrives or the peer
    /// hangs up.
    fn recv(&self) -> Result<Bytes>;

    /// Receives the next frame if one is already buffered.
    ///
    /// Returns `Ok(None)` when no frame is pending. Returns
    /// `Err(Closed)` only once the peer has hung up *and* all buffered
    /// frames have been drained.
    fn try_recv(&self) -> Result<Option<Bytes>>;

    /// Receives the next frame, waiting at most `timeout`.
    /// Returns `Ok(None)` on timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>>;

    /// Human-readable description of the peer, for diagnostics.
    fn peer(&self) -> String;
}

/// A boxed connection, the form the core library passes around.
pub type BoxedConnection = Box<dyn Connection>;

/// A shared connection: the receive side may be pumped by one thread
/// while another thread sends.
pub type SharedConnection = std::sync::Arc<dyn Connection>;

/// Something that accepts inbound connections (a bound TCP port or a
/// named in-process rendezvous point).
pub trait Listener: Send {
    /// Blocks until the next inbound connection arrives.
    fn accept(&self) -> Result<BoxedConnection>;

    /// The address/name peers use to reach this listener.
    fn addr(&self) -> String;
}

/// A boxed listener.
pub type BoxedListener = Box<dyn Listener>;
