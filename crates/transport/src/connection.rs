//! The connection abstraction shared by all transports.
//!
//! MRNet processes exchange *frames*: opaque byte buffers that the core
//! library fills with encoded packet buffers or control messages. A
//! [`Connection`] is one bidirectional, ordered, reliable frame pipe —
//! the role a TCP socket plays in the original system. The local
//! (in-process) and TCP transports both implement this trait, so the
//! core's internal-process event loop is transport-agnostic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;

use crate::error::Result;

/// Point-in-time traffic totals for one connection, in frames and
/// payload bytes, from this endpoint's perspective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames this endpoint sent.
    pub frames_sent: u64,
    /// Payload bytes this endpoint sent.
    pub bytes_sent: u64,
    /// Frames this endpoint received.
    pub frames_recv: u64,
    /// Payload bytes this endpoint received.
    pub bytes_recv: u64,
    /// Frames that shared a transmit syscall with at least one other
    /// frame: each vectored write carrying `b > 1` frames contributes
    /// `b - 1` (the writes it saved versus frame-at-a-time sending).
    pub frames_coalesced: u64,
    /// Sends that found the outbound queue at capacity — blocking
    /// sends that had to wait, plus non-blocking sends that returned
    /// [`crate::TransportError::WouldBlock`].
    pub enqueue_stalls: u64,
    /// Frames currently queued behind the writer, sampled at snapshot
    /// time. Zero for transports without a send queue.
    pub queue_depth: u64,
}

/// Relaxed atomic traffic counters backing [`ConnStats`]; transports
/// embed one and bump it on every frame.
#[derive(Debug, Default)]
pub(crate) struct ConnCounters {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_recv: AtomicU64,
    frames_coalesced: AtomicU64,
    enqueue_stalls: AtomicU64,
}

impl ConnCounters {
    pub(crate) fn note_sent(&self, bytes: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_recv(&self, bytes: usize) {
        self.frames_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_coalesced(&self, saved_writes: u64) {
        self.frames_coalesced
            .fetch_add(saved_writes, Ordering::Relaxed);
    }

    pub(crate) fn note_stall(&self) {
        self.enqueue_stalls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ConnStats {
        self.snapshot_with_depth(0)
    }

    pub(crate) fn snapshot_with_depth(&self, queue_depth: usize) -> ConnStats {
        ConnStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            frames_coalesced: self.frames_coalesced.load(Ordering::Relaxed),
            enqueue_stalls: self.enqueue_stalls.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
        }
    }
}

/// A bidirectional, ordered, reliable frame pipe between two processes.
///
/// Implementations are `Sync`: the receive side may be pumped by one
/// thread while another sends.
pub trait Connection: Send + Sync {
    /// Sends one frame. Enqueues without blocking while the transport's
    /// outbound buffer has room; once the buffer is at capacity the
    /// send applies backpressure (blocks) until space frees up. Fails
    /// once the peer has hung up.
    fn send(&self, frame: Bytes) -> Result<()>;

    /// Sends one frame without ever blocking: fails with
    /// [`crate::TransportError::WouldBlock`] when the outbound buffer
    /// is at capacity (the frame is not enqueued). Transports without
    /// a bounded send buffer treat this as [`Connection::send`].
    fn try_send(&self, frame: Bytes) -> Result<()> {
        self.send(frame)
    }

    /// Receives the next frame, blocking until one arrives or the peer
    /// hangs up.
    fn recv(&self) -> Result<Bytes>;

    /// Receives the next frame if one is already buffered.
    ///
    /// Returns `Ok(None)` when no frame is pending. Returns
    /// `Err(Closed)` only once the peer has hung up *and* all buffered
    /// frames have been drained.
    fn try_recv(&self) -> Result<Option<Bytes>>;

    /// Receives the next frame, waiting at most `timeout`.
    /// Returns `Ok(None)` on timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>>;

    /// Human-readable description of the peer, for diagnostics.
    fn peer(&self) -> String;

    /// Traffic totals for this endpoint. Transports that do not count
    /// report all-zero stats (the default).
    fn stats(&self) -> ConnStats {
        ConnStats::default()
    }
}

/// A boxed connection, the form the core library passes around.
pub type BoxedConnection = Box<dyn Connection>;

/// A shared connection: the receive side may be pumped by one thread
/// while another thread sends.
pub type SharedConnection = std::sync::Arc<dyn Connection>;

/// Something that accepts inbound connections (a bound TCP port or a
/// named in-process rendezvous point).
pub trait Listener: Send {
    /// Blocks until the next inbound connection arrives.
    fn accept(&self) -> Result<BoxedConnection>;

    /// The address/name peers use to reach this listener.
    fn addr(&self) -> String;
}

/// A boxed listener.
pub type BoxedListener = Box<dyn Listener>;
