//! Error types for the transport substrate.

use std::fmt;

/// Errors produced by transport connections and listeners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed the connection (or the channel was dropped).
    Closed,
    /// An operating-system I/O error, stringified for cloneability.
    Io(String),
    /// A blocking receive timed out.
    Timeout,
    /// No listener is registered under the requested rendezvous name.
    UnknownEndpoint(String),
    /// A received frame violated the wire protocol.
    Protocol(String),
    /// The peer is confirmed dead: the connection failed mid-frame,
    /// errored at the socket level, or missed its heartbeat deadline.
    /// Unlike [`TransportError::Closed`] (an orderly shutdown at a
    /// frame boundary) this carries a diagnostic reason.
    PeerGone(String),
    /// A non-blocking send found the outbound queue full. The frame
    /// was *not* enqueued; the caller decides whether to retry, drop,
    /// or fall back to a blocking send. Never returned by blocking
    /// sends and never a sign of peer loss.
    WouldBlock,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::Io(e) => write!(f, "I/O error: {e}"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::UnknownEndpoint(name) => {
                write!(f, "no listener registered for endpoint `{name}`")
            }
            TransportError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            TransportError::PeerGone(reason) => write!(f, "peer gone: {reason}"),
            TransportError::WouldBlock => write!(f, "outbound queue full"),
        }
    }
}

impl TransportError {
    /// Whether this error means the peer is definitively unreachable
    /// (closed, dead, or failed at the socket level) as opposed to a
    /// transient condition like [`TransportError::Timeout`].
    pub fn is_peer_loss(&self) -> bool {
        matches!(
            self,
            TransportError::Closed | TransportError::PeerGone(_) | TransportError::Io(_)
        )
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// Convenient result alias for transport operations.
pub type Result<T> = std::result::Result<T, TransportError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            TransportError::Closed.to_string(),
            "connection closed by peer"
        );
        assert!(TransportError::Io("boom".into())
            .to_string()
            .contains("boom"));
        assert!(TransportError::UnknownEndpoint("leaf3".into())
            .to_string()
            .contains("leaf3"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset");
        let e: TransportError = io.into();
        assert!(matches!(e, TransportError::Io(_)));
    }
}
