//! # mrnet-transport
//!
//! The communication substrate beneath the MRNet overlay: a
//! transport-agnostic [`Connection`]/[`Listener`] abstraction with two
//! implementations — an in-process channel transport ([`LocalFabric`],
//! used when a whole tree runs as threads) and a real TCP transport
//! ([`TcpConnection`]) carrying length-prefixed frames across process
//! and host boundaries, as the original MRNet's socket layer does.

#![forbid(unsafe_code)]

mod clock;
mod connection;
mod error;
mod local;
mod retry;
mod tcp;

pub use clock::ClockEstimate;
pub use connection::{
    BoxedConnection, BoxedListener, ConnStats, Connection, Listener, SharedConnection,
};
pub use error::{Result, TransportError};
pub use local::{LocalConnection, LocalFabric, LocalListener};
pub use retry::{RetryPolicy, CONNECT_RETRIES_ENV};
pub use tcp::{TcpConnection, TcpTransportListener, HEARTBEAT_ENV, MAX_FRAME, SEND_QUEUE_ENV};
