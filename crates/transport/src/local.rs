//! In-process transport: connections are crossbeam channel pairs.
//!
//! This is the transport used when an entire MRNet tree runs as
//! threads in one OS process — the configuration used by the test
//! suite and the threaded examples. [`LocalFabric`] provides the named
//! rendezvous that stands in for "host:port" addressing, supporting
//! the paper's second instantiation mode where externally created
//! back-ends connect to already-running leaf internal processes
//! (§2.5).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::connection::{
    BoxedConnection, BoxedListener, ConnCounters, ConnStats, Connection, Listener,
};
use crate::error::{Result, TransportError};

/// One end of an in-process connection.
pub struct LocalConnection {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    peer: String,
    counters: ConnCounters,
}

impl LocalConnection {
    /// Creates a connected pair of local endpoints.
    ///
    /// `a_name` and `b_name` label the two sides for diagnostics: the
    /// first returned endpoint is held by `a_name` and reports its peer
    /// as `b_name`, and vice versa.
    pub fn pair(a_name: &str, b_name: &str) -> (LocalConnection, LocalConnection) {
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        (
            LocalConnection {
                tx: a_tx,
                rx: a_rx,
                peer: b_name.to_owned(),
                counters: ConnCounters::default(),
            },
            LocalConnection {
                tx: b_tx,
                rx: b_rx,
                peer: a_name.to_owned(),
                counters: ConnCounters::default(),
            },
        )
    }
}

impl Connection for LocalConnection {
    fn send(&self, frame: Bytes) -> Result<()> {
        let len = frame.len();
        self.tx.send(frame).map_err(|_| TransportError::Closed)?;
        self.counters.note_sent(len);
        Ok(())
    }

    fn recv(&self) -> Result<Bytes> {
        let frame = self.rx.recv().map_err(|_| TransportError::Closed)?;
        self.counters.note_recv(frame.len());
        Ok(frame)
    }

    fn try_recv(&self) -> Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(frame) => {
                self.counters.note_recv(frame.len());
                Ok(Some(frame))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => {
                self.counters.note_recv(frame.len());
                Ok(Some(frame))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn stats(&self) -> ConnStats {
        self.counters.snapshot()
    }
}

type FabricMap = Mutex<HashMap<String, Sender<BoxedConnection>>>;

/// A named in-process rendezvous fabric.
///
/// Listeners register under a name (standing in for `host:port`);
/// connectors reach them by that name. Clones share the same fabric.
#[derive(Clone, Default)]
pub struct LocalFabric {
    listeners: Arc<FabricMap>,
}

impl LocalFabric {
    /// Creates an empty fabric.
    pub fn new() -> LocalFabric {
        LocalFabric::default()
    }

    /// Registers a listener under `name`. Re-registering a name
    /// replaces the previous listener (its `accept` starts failing).
    pub fn listen(&self, name: &str) -> LocalListener {
        let (tx, rx) = unbounded();
        self.listeners.lock().insert(name.to_owned(), tx);
        LocalListener {
            name: name.to_owned(),
            inbound: rx,
        }
    }

    /// Connects to the listener registered under `name`, returning the
    /// connector-side endpoint. `from` labels the connecting process.
    pub fn connect(&self, name: &str, from: &str) -> Result<BoxedConnection> {
        let tx = {
            let map = self.listeners.lock();
            map.get(name)
                .cloned()
                .ok_or_else(|| TransportError::UnknownEndpoint(name.to_owned()))?
        };
        let (mine, theirs) = LocalConnection::pair(from, name);
        tx.send(Box::new(theirs) as BoxedConnection)
            .map_err(|_| TransportError::UnknownEndpoint(name.to_owned()))?;
        Ok(Box::new(mine))
    }

    /// Removes a listener registration.
    pub fn unlisten(&self, name: &str) {
        self.listeners.lock().remove(name);
    }

    /// Names currently registered, for diagnostics.
    pub fn registered(&self) -> Vec<String> {
        let mut names: Vec<_> = self.listeners.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

/// The accepting side of a [`LocalFabric`] registration.
pub struct LocalListener {
    name: String,
    inbound: Receiver<BoxedConnection>,
}

impl Listener for LocalListener {
    fn accept(&self) -> Result<BoxedConnection> {
        self.inbound.recv().map_err(|_| TransportError::Closed)
    }

    fn addr(&self) -> String {
        self.name.clone()
    }
}

impl LocalListener {
    /// Accepts with a timeout; `Ok(None)` when nothing arrived.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Option<BoxedConnection>> {
        match self.inbound.recv_timeout(timeout) {
            Ok(conn) => Ok(Some(conn)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    /// Boxes this listener.
    pub fn boxed(self) -> BoxedListener {
        Box::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_carries_frames_both_ways() {
        let (a, b) = LocalConnection::pair("fe", "be");
        a.send(Bytes::from_static(b"down")).unwrap();
        b.send(Bytes::from_static(b"up")).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"down"));
        assert_eq!(a.recv().unwrap(), Bytes::from_static(b"up"));
        assert_eq!(a.peer(), "be");
        assert_eq!(b.peer(), "fe");
    }

    #[test]
    fn frames_are_ordered() {
        let (a, b) = LocalConnection::pair("x", "y");
        for i in 0..100u8 {
            a.send(Bytes::copy_from_slice(&[i])).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(b.recv().unwrap()[0], i);
        }
    }

    #[test]
    fn try_recv_nonblocking() {
        let (a, b) = LocalConnection::pair("x", "y");
        assert_eq!(b.try_recv().unwrap(), None);
        a.send(Bytes::from_static(b"z")).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(Bytes::from_static(b"z")));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_a, b) = LocalConnection::pair("x", "y");
        let got = b.recv_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn drop_closes() {
        let (a, b) = LocalConnection::pair("x", "y");
        drop(a);
        assert_eq!(b.recv().unwrap_err(), TransportError::Closed);
        assert_eq!(b.send(Bytes::new()).unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn buffered_frames_survive_peer_drop() {
        let (a, b) = LocalConnection::pair("x", "y");
        a.send(Bytes::from_static(b"last")).unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"last"));
        assert_eq!(b.recv().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn stats_count_frames_and_bytes() {
        let (a, b) = LocalConnection::pair("x", "y");
        a.send(Bytes::from_static(b"12345")).unwrap();
        a.send(Bytes::from_static(b"678")).unwrap();
        assert_eq!(b.recv().unwrap().len(), 5);
        assert_eq!(b.try_recv().unwrap().unwrap().len(), 3);
        let sa = a.stats();
        assert_eq!(sa.frames_sent, 2);
        assert_eq!(sa.bytes_sent, 8);
        assert_eq!(sa.frames_recv, 0);
        let sb = b.stats();
        assert_eq!(sb.frames_recv, 2);
        assert_eq!(sb.bytes_recv, 8);
        assert_eq!(sb.bytes_sent, 0);
    }

    #[test]
    fn fabric_rendezvous() {
        let fabric = LocalFabric::new();
        let listener = fabric.listen("leaf0");
        let conn = fabric.connect("leaf0", "backend7").unwrap();
        let accepted = listener.accept().unwrap();
        conn.send(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(accepted.recv().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(accepted.peer(), "backend7");
        assert_eq!(conn.peer(), "leaf0");
    }

    #[test]
    fn fabric_unknown_endpoint() {
        let fabric = LocalFabric::new();
        let err = fabric.connect("nope", "x").err().expect("must fail");
        assert_eq!(err, TransportError::UnknownEndpoint("nope".into()));
    }

    #[test]
    fn fabric_unlisten() {
        let fabric = LocalFabric::new();
        let _l = fabric.listen("a");
        assert_eq!(fabric.registered(), vec!["a".to_string()]);
        fabric.unlisten("a");
        assert!(fabric.registered().is_empty());
        assert!(fabric.connect("a", "x").is_err());
    }

    #[test]
    fn fabric_accept_timeout() {
        let fabric = LocalFabric::new();
        let listener = fabric.listen("quiet");
        assert!(listener
            .accept_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none());
    }

    #[test]
    fn fabric_cross_thread() {
        let fabric = LocalFabric::new();
        let listener = fabric.listen("root");
        let f2 = fabric.clone();
        let handle = std::thread::spawn(move || {
            let conn = f2.connect("root", "child").unwrap();
            conn.send(Bytes::from_static(b"report")).unwrap();
            conn.recv().unwrap()
        });
        let server_side = listener.accept().unwrap();
        assert_eq!(server_side.recv().unwrap(), Bytes::from_static(b"report"));
        server_side.send(Bytes::from_static(b"ack")).unwrap();
        assert_eq!(handle.join().unwrap(), Bytes::from_static(b"ack"));
    }
}
