//! Bounded exponential backoff for TCP connection establishment.
//!
//! MRNet's process-mode launch has an inherent connect-back race: a
//! parent spawns a child process and the child dials the parent's
//! listener (or vice versa in mode-2 attach) before the other side is
//! necessarily accepting. A transient `ECONNREFUSED` during that
//! window is not a failure — it is the expected cost of not
//! serializing the whole launch. [`RetryPolicy`] retries with
//! exponential backoff plus jitter, bounded so genuinely dead
//! addresses still fail promptly.

use std::time::Duration;

use crate::error::Result;
use crate::tcp::TcpConnection;

/// Environment variable overriding the retry count: the number of
/// *additional* connection attempts after the first failure.
/// `MRNET_CONNECT_RETRIES=0` disables retrying.
pub const CONNECT_RETRIES_ENV: &str = "MRNET_CONNECT_RETRIES";

/// Bounded exponential-backoff policy for [`TcpConnection::connect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure.
    pub retries: u32,
    /// Delay before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Ceiling on the per-retry delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }
}

/// Cheap jitter source: sub-microsecond wall-clock noise. The goal is
/// only to de-synchronize sibling processes retrying in lockstep, so
/// cryptographic quality is irrelevant (and `mrnet-transport` takes no
/// RNG dependency).
fn jitter(max: Duration) -> Duration {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let span = max.as_nanos().max(1) as u32;
    Duration::from_nanos(u64::from(nanos % span))
}

impl RetryPolicy {
    /// The default policy with the retry count optionally overridden
    /// by `MRNET_CONNECT_RETRIES`.
    pub fn from_env() -> RetryPolicy {
        let mut policy = RetryPolicy::default();
        if let Some(n) = std::env::var(CONNECT_RETRIES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
        {
            policy.retries = n;
        }
        policy
    }

    /// Connects to `addr`, retrying transient failures per this
    /// policy. On success returns the connection and how many retries
    /// were needed (0 = first attempt succeeded) so callers can feed
    /// their `connect_retries` counters; on exhaustion returns the
    /// last error.
    pub fn connect(&self, addr: &str) -> Result<(TcpConnection, u32)> {
        let mut delay = self.base_delay;
        let mut last_err = None;
        for attempt in 0..=self.retries {
            match TcpConnection::connect(addr) {
                Ok(conn) => return Ok((conn, attempt)),
                Err(e) => last_err = Some(e),
            }
            if attempt < self.retries {
                std::thread::sleep(delay + jitter(delay / 2));
                delay = (delay * 2).min(self.max_delay);
            }
        }
        Err(last_err.expect("at least one attempt"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::{Connection, Listener};
    use crate::tcp::TcpTransportListener;
    use crate::TransportError;
    use std::net::TcpListener;

    #[test]
    fn first_attempt_success_reports_zero_retries() {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let policy = RetryPolicy::default();
        let (conn, retries) = policy.connect(&addr).unwrap();
        assert_eq!(retries, 0);
        drop(conn);
    }

    #[test]
    fn dead_address_fails_after_bounded_retries() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let policy = RetryPolicy {
            retries: 2,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(10),
        };
        let start = std::time::Instant::now();
        let err = policy.connect(&dead).err().expect("must fail");
        assert!(matches!(err, TransportError::Io(_)));
        // Two backoff sleeps (≥ 5ms + 10ms) must have happened.
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn zero_retries_is_single_attempt() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let policy = RetryPolicy {
            retries: 0,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(50),
        };
        let start = std::time::Instant::now();
        assert!(policy.connect(&dead).is_err());
        assert!(start.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn connects_once_listener_appears() {
        // Reserve a port, free it, and re-bind it shortly after the
        // connector starts retrying — the connect-back race in
        // miniature.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let addr2 = addr.clone();
        let acceptor = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let listener = TcpTransportListener::bind(&addr2).unwrap();
            let server = listener.accept().unwrap();
            server.recv().unwrap()
        });
        let policy = RetryPolicy {
            retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(50),
        };
        let (conn, retries) = policy.connect(&addr).unwrap();
        assert!(retries > 0, "listener was late; retries must be > 0");
        conn.send(bytes::Bytes::from_static(b"made it")).unwrap();
        assert_eq!(
            acceptor.join().unwrap(),
            bytes::Bytes::from_static(b"made it")
        );
    }
}
