//! TCP transport: length-prefixed frames over real sockets.
//!
//! This is the deployment transport — the overlay network actually
//! crosses process and host boundaries, exactly as the original
//! MRNet's socket layer does. Each frame is a `u32` little-endian
//! length followed by that many payload bytes. A background reader
//! thread pumps inbound frames into a channel so that the non-blocking
//! `try_recv`/`recv_timeout` used by internal-process event loops work
//! uniformly across transports.
//!
//! # Send pipeline
//!
//! Each connection owns a dedicated writer thread fed by a bounded
//! queue of encoded frames, so [`Connection::send`] is an enqueue, not
//! a socket write: a peer that stops reading exerts backpressure only
//! on its own queue, never on the caller's event loop or on sends to
//! sibling connections (until the queue itself fills — see
//! [`SEND_QUEUE_ENV`]). The writer drains the queue with a single
//! vectored write per wake-up — length prefix and payload of every
//! queued frame in one syscall, no intermediate copy, no per-frame
//! flush — and owns failure detection for the send direction.
//!
//! # Failure detection
//!
//! The reader thread classifies how a connection ended and records a
//! *death note* the receive paths surface to callers:
//!
//! - EOF at a frame boundary → [`TransportError::Closed`] (orderly).
//! - EOF mid-frame, socket error, or corrupt length prefix →
//!   [`TransportError::PeerGone`] with a diagnostic reason.
//! - With heartbeats enabled (`MRNET_HEARTBEAT_SECS`), a peer silent
//!   for three intervals → [`TransportError::PeerGone`] even when the
//!   socket never reports an error (half-open connections, frozen
//!   peers). Heartbeats are `u32::MAX` length prefixes carrying no
//!   payload, invisible to the frame stream.

use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;

use crate::connection::{
    BoxedConnection, BoxedListener, ConnCounters, ConnStats, Connection, Listener,
};
use crate::error::{Result, TransportError};

/// Maximum accepted frame size; protects against corrupt length
/// prefixes.
pub const MAX_FRAME: u32 = 256 << 20;

/// Environment variable enabling keepalive heartbeats: a positive
/// float number of seconds between beats. Unset or non-positive
/// disables them (the default — EOF detection is then the only death
/// signal, which suffices for peers whose kernel closes their sockets).
pub const HEARTBEAT_ENV: &str = "MRNET_HEARTBEAT_SECS";

/// Length-prefix value reserved for heartbeat markers. Distinguishable
/// from real frames because it exceeds [`MAX_FRAME`].
const HEARTBEAT_MARKER: u32 = u32::MAX;

/// A peer is declared dead after this many silent heartbeat intervals.
const HEARTBEAT_MISSES: u32 = 3;

/// How many inbound frames may queue before the reader thread applies
/// back-pressure to the socket.
const INBOUND_DEPTH: usize = 1024;

/// Environment variable overriding the outbound send-queue depth in
/// frames (default [`SEND_QUEUE_DEPTH`]). A blocking send only stalls
/// the caller once this many frames are queued behind the writer
/// thread; `try_send` instead fails with
/// [`TransportError::WouldBlock`] at that point.
pub const SEND_QUEUE_ENV: &str = "MRNET_SEND_QUEUE";

/// Default outbound send-queue depth, in frames.
const SEND_QUEUE_DEPTH: usize = 1024;

/// Upper bound on frames coalesced into one vectored write. Caps the
/// iovec array (well under the kernel's `IOV_MAX`, typically 1024:
/// each frame contributes a length-prefix slice and a payload slice).
const COALESCE_MAX: usize = 64;

fn send_queue_depth() -> usize {
    std::env::var(SEND_QUEUE_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&d| d > 0)
        .unwrap_or(SEND_QUEUE_DEPTH)
}

/// Shared slot where the reader thread records why the connection
/// died, read by `recv`/`try_recv`/`recv_timeout` once the inbound
/// channel disconnects.
type DeathNote = Arc<Mutex<Option<TransportError>>>;

fn heartbeat_interval() -> Option<Duration> {
    let raw = std::env::var(HEARTBEAT_ENV).ok()?;
    let secs: f64 = raw.trim().parse().ok()?;
    if secs > 0.0 && secs.is_finite() {
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    }
}

/// One end of a TCP connection carrying length-prefixed frames.
pub struct TcpConnection {
    outbound: Sender<Bytes>,
    inbound: Receiver<Bytes>,
    peer: String,
    counters: Arc<ConnCounters>,
    death: DeathNote,
}

enum ReadStep {
    /// The buffer was filled completely.
    Done,
    /// The read timed out before the buffer filled (heartbeat mode).
    Timeout,
    /// The peer closed the connection; `true` if mid-buffer.
    Eof(bool),
}

/// Reads into `buf[*filled..]`, advancing `filled` and stamping
/// `last_heard` whenever bytes arrive. Returns instead of blocking
/// when the socket read timeout fires.
fn read_into(
    stream: &mut TcpStream,
    buf: &mut [u8],
    filled: &mut usize,
    last_heard: &mut Instant,
) -> std::io::Result<ReadStep> {
    while *filled < buf.len() {
        match stream.read(&mut buf[*filled..]) {
            Ok(0) => return Ok(ReadStep::Eof(*filled > 0)),
            Ok(n) => {
                *filled += n;
                *last_heard = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Ok(ReadStep::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadStep::Done)
}

struct ReaderLoop {
    stream: TcpStream,
    tx: Sender<Bytes>,
    death: DeathNote,
    /// `Some` when heartbeats are enabled; the reader then uses a
    /// socket read timeout to poll the silence deadline.
    heartbeat: Option<Duration>,
}

impl ReaderLoop {
    fn die(&self, reason: TransportError) {
        // First classification wins: the writer thread may already have
        // recorded why the peer died, and its diagnosis precedes the
        // EOF our own shutdown then feeds this reader.
        self.death.lock().get_or_insert(reason);
    }

    fn silence_limit(&self) -> Duration {
        // Unwrap is safe: only consulted in heartbeat mode.
        self.heartbeat.expect("heartbeat enabled") * HEARTBEAT_MISSES
    }

    fn run(mut self) {
        let mut last_heard = Instant::now();
        loop {
            // Length prefix. EOF with zero bytes here is an orderly
            // close; anything else is a peer death.
            let mut len_buf = [0u8; 4];
            let mut filled = 0;
            let len = loop {
                match read_into(&mut self.stream, &mut len_buf, &mut filled, &mut last_heard) {
                    Ok(ReadStep::Done) => break u32::from_le_bytes(len_buf),
                    Ok(ReadStep::Timeout) => {
                        if last_heard.elapsed() > self.silence_limit() {
                            return self.die(TransportError::PeerGone(format!(
                                "no data or heartbeat for {:?}",
                                self.silence_limit()
                            )));
                        }
                    }
                    Ok(ReadStep::Eof(false)) => return, // clean close
                    Ok(ReadStep::Eof(true)) => {
                        return self.die(TransportError::PeerGone(
                            "connection lost mid-frame (in length prefix)".to_owned(),
                        ))
                    }
                    Err(e) => return self.die(TransportError::PeerGone(e.to_string())),
                }
            };
            if len == HEARTBEAT_MARKER {
                continue; // keepalive only; never surfaced as a frame
            }
            if len > MAX_FRAME {
                return self.die(TransportError::PeerGone(format!(
                    "frame length {len} exceeds limit {MAX_FRAME}"
                )));
            }
            let mut payload = vec![0u8; len as usize];
            let mut filled = 0;
            loop {
                match read_into(&mut self.stream, &mut payload, &mut filled, &mut last_heard) {
                    Ok(ReadStep::Done) => break,
                    Ok(ReadStep::Timeout) => {
                        if last_heard.elapsed() > self.silence_limit() {
                            return self.die(TransportError::PeerGone(format!(
                                "stalled mid-frame for {:?}",
                                self.silence_limit()
                            )));
                        }
                    }
                    Ok(ReadStep::Eof(_)) => {
                        return self.die(TransportError::PeerGone(
                            "connection lost mid-frame (in payload)".to_owned(),
                        ))
                    }
                    Err(e) => return self.die(TransportError::PeerGone(e.to_string())),
                }
            }
            if self.tx.send(Bytes::from(payload)).is_err() {
                return; // local side dropped the connection
            }
        }
    }
}

fn spawn_reader(reader: ReaderLoop) {
    std::thread::Builder::new()
        .name("mrnet-tcp-reader".to_owned())
        .spawn(move || reader.run())
        .expect("spawn tcp reader thread");
}

/// Writes a list of byte segments with as few vectored-write syscalls
/// as possible (one, absent partial writes), resuming after partials.
fn write_segments(stream: &mut TcpStream, segments: &[&[u8]]) -> std::io::Result<()> {
    let mut seg = 0; // first segment with unwritten bytes
    let mut off = 0; // bytes of `segments[seg]` already written
    while seg < segments.len() {
        let slices: Vec<IoSlice<'_>> = std::iter::once(IoSlice::new(&segments[seg][off..]))
            .chain(segments[seg + 1..].iter().map(|s| IoSlice::new(s)))
            .collect();
        let mut n = match stream.write_vectored(&slices) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Advance (seg, off) past the bytes just written; empty
        // segments fall through without a syscall of their own.
        while seg < segments.len() {
            let left = segments[seg].len() - off;
            if n < left {
                off += n;
                break;
            }
            n -= left;
            seg += 1;
            off = 0;
        }
    }
    Ok(())
}

/// Writes `frames` to the socket, each preceded by its length prefix,
/// coalesced into a single vectored write.
fn write_frames(stream: &mut TcpStream, frames: &[Bytes]) -> std::io::Result<()> {
    let headers: Vec<[u8; 4]> = frames
        .iter()
        .map(|f| (f.len() as u32).to_le_bytes())
        .collect();
    let mut segments: Vec<&[u8]> = Vec::with_capacity(frames.len() * 2);
    for (h, f) in headers.iter().zip(frames) {
        segments.push(h);
        segments.push(f);
    }
    write_segments(stream, &segments)
}

/// The dedicated per-connection writer: drains the outbound queue,
/// coalescing everything queued (up to [`COALESCE_MAX`]) into one
/// vectored write, emits keepalive markers when idle, and records the
/// death note when the send direction fails.
struct WriterLoop {
    stream: TcpStream,
    rx: Receiver<Bytes>,
    death: DeathNote,
    counters: Arc<ConnCounters>,
    heartbeat: Option<Duration>,
}

impl WriterLoop {
    fn die(&self, reason: TransportError) {
        self.death.lock().get_or_insert(reason);
    }

    /// Blocks for the next frame, emitting heartbeats while idle.
    /// `None` once every sender has dropped (all queued frames were
    /// already drained by then: the channel only disconnects empty).
    fn next_frame(&mut self) -> Option<Bytes> {
        loop {
            let interval = match self.heartbeat {
                Some(interval) => interval,
                None => return self.rx.recv().ok(),
            };
            match self.rx.recv_timeout(interval) {
                Ok(frame) => return Some(frame),
                Err(RecvTimeoutError::Timeout) => {
                    // Idle: keep the peer's silence detector fed. A
                    // failure here is left for the next data write (or
                    // the reader) to classify.
                    if self
                        .stream
                        .write_all(&HEARTBEAT_MARKER.to_le_bytes())
                        .is_err()
                    {
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    fn run(mut self) {
        let mut frames = Vec::with_capacity(COALESCE_MAX);
        while let Some(first) = self.next_frame() {
            frames.clear();
            frames.push(first);
            while frames.len() < COALESCE_MAX {
                match self.rx.try_recv() {
                    Ok(f) => frames.push(f),
                    Err(_) => break,
                }
            }
            if let Err(e) = write_frames(&mut self.stream, &frames) {
                self.die(TransportError::PeerGone(format!("send failed: {e}")));
                break;
            }
            // Transmission accounting happens here, after the bytes
            // actually reached the socket — frames queued toward a
            // peer that dies first are never counted as sent.
            for f in &frames {
                self.counters.note_sent(f.len());
            }
            if frames.len() > 1 {
                self.counters.note_coalesced(frames.len() as u64 - 1);
            }
        }
        // Both exit paths end the connection: shutting down the read
        // direction pops our own reader thread out of its blocking
        // read, and the write direction sends the peer its EOF.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

fn spawn_writer(writer: WriterLoop) {
    std::thread::Builder::new()
        .name("mrnet-tcp-writer".to_owned())
        .spawn(move || writer.run())
        .expect("spawn tcp writer thread");
}

impl TcpConnection {
    fn from_stream(stream: TcpStream) -> Result<TcpConnection> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_owned());
        let reader_stream = stream.try_clone()?;
        let heartbeat = heartbeat_interval();
        if let Some(interval) = heartbeat {
            // Poll often enough to notice silence well before the
            //3-interval deadline.
            reader_stream.set_read_timeout(Some((interval / 2).max(Duration::from_millis(5))))?;
        }
        let (tx, rx) = bounded(INBOUND_DEPTH);
        let death: DeathNote = Arc::new(Mutex::new(None));
        spawn_reader(ReaderLoop {
            stream: reader_stream,
            tx,
            death: death.clone(),
            heartbeat,
        });
        let counters = Arc::new(ConnCounters::default());
        let (out_tx, out_rx) = bounded(send_queue_depth());
        spawn_writer(WriterLoop {
            stream,
            rx: out_rx,
            death: death.clone(),
            counters: counters.clone(),
            heartbeat,
        });
        Ok(TcpConnection {
            outbound: out_tx,
            inbound: rx,
            peer,
            counters,
            death,
        })
    }

    /// Connects to a listening MRNet process.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpConnection> {
        let stream = TcpStream::connect(addr)?;
        TcpConnection::from_stream(stream)
    }

    /// Why the connection ended: the death note recorded by whichever
    /// of the reader/writer threads diagnosed the failure first,
    /// defaulting to an orderly [`TransportError::Closed`].
    fn death_reason(&self) -> TransportError {
        self.death.lock().clone().unwrap_or(TransportError::Closed)
    }
}

// No `Drop` impl: dropping the connection drops the outbound sender,
// which disconnects the writer's channel; the writer drains whatever
// was already queued (in-flight shutdown frames must still reach the
// peer) and then shuts the socket down in both directions — giving the
// peer its EOF and popping our own reader thread out of its blocking
// read.

impl Connection for TcpConnection {
    fn send(&self, frame: Bytes) -> Result<()> {
        // Fast path: enqueue without blocking. Once the bounded queue
        // is full, count the stall and fall back to a blocking send —
        // that is the backpressure contract of `send`.
        match self.outbound.try_send(frame) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(frame)) => {
                self.counters.note_stall();
                self.outbound.send(frame).map_err(|_| self.death_reason())
            }
            Err(TrySendError::Disconnected(_)) => Err(self.death_reason()),
        }
    }

    fn try_send(&self, frame: Bytes) -> Result<()> {
        match self.outbound.try_send(frame) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.counters.note_stall();
                Err(TransportError::WouldBlock)
            }
            Err(TrySendError::Disconnected(_)) => Err(self.death_reason()),
        }
    }

    fn recv(&self) -> Result<Bytes> {
        let frame = self.inbound.recv().map_err(|_| self.death_reason())?;
        self.counters.note_recv(frame.len());
        Ok(frame)
    }

    fn try_recv(&self) -> Result<Option<Bytes>> {
        match self.inbound.try_recv() {
            Ok(frame) => {
                self.counters.note_recv(frame.len());
                Ok(Some(frame))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.death_reason()),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>> {
        match self.inbound.recv_timeout(timeout) {
            Ok(frame) => {
                self.counters.note_recv(frame.len());
                Ok(Some(frame))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(self.death_reason()),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn stats(&self) -> ConnStats {
        self.counters.snapshot_with_depth(self.outbound.len())
    }
}

/// A bound TCP listener accepting MRNet connections.
pub struct TcpTransportListener {
    listener: TcpListener,
    addr: String,
}

impl TcpTransportListener {
    /// Binds to `addr`; use port 0 to let the OS pick (the chosen
    /// address is available via [`Listener::addr`], which is how leaf
    /// processes publish their rendezvous points in mode-2
    /// instantiation).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<TcpTransportListener> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        Ok(TcpTransportListener { listener, addr })
    }

    /// Boxes this listener.
    pub fn boxed(self) -> BoxedListener {
        Box::new(self)
    }
}

impl Listener for TcpTransportListener {
    fn accept(&self) -> Result<BoxedConnection> {
        let (stream, _) = self.listener.accept()?;
        Ok(Box::new(TcpConnection::from_stream(stream)?))
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpConnection, BoxedConnection) {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let client = TcpConnection::connect(&addr).unwrap();
        let server = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_round_trip() {
        let (client, server) = pair();
        client.send(Bytes::from_static(b"hello overlay")).unwrap();
        assert_eq!(server.recv().unwrap(), Bytes::from_static(b"hello overlay"));
        server.send(Bytes::from_static(b"ack")).unwrap();
        assert_eq!(client.recv().unwrap(), Bytes::from_static(b"ack"));
    }

    #[test]
    fn empty_frames_allowed() {
        let (client, server) = pair();
        client.send(Bytes::new()).unwrap();
        assert_eq!(server.recv().unwrap(), Bytes::new());
    }

    #[test]
    fn large_frame() {
        let (client, server) = pair();
        let big = Bytes::from(vec![0xAB; 1 << 20]);
        client.send(big.clone()).unwrap();
        assert_eq!(server.recv().unwrap(), big);
    }

    #[test]
    fn many_ordered_frames() {
        let (client, server) = pair();
        for i in 0..200u32 {
            client
                .send(Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        for i in 0..200u32 {
            let f = server.recv().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn stats_count_payload_bytes() {
        let (client, server) = pair();
        client.send(Bytes::from_static(b"abcd")).unwrap();
        assert_eq!(server.recv().unwrap().len(), 4);
        // Send accounting happens on the writer thread after the bytes
        // hit the socket; poll briefly for it to land.
        let deadline = Instant::now() + Duration::from_secs(5);
        let cs = loop {
            let cs = client.stats();
            if cs.frames_sent == 1 || Instant::now() > deadline {
                break cs;
            }
            std::thread::yield_now();
        };
        assert_eq!(cs.frames_sent, 1);
        assert_eq!(cs.bytes_sent, 4); // payload only, not the length prefix
        let ss = server.stats();
        assert_eq!(ss.frames_recv, 1);
        assert_eq!(ss.bytes_recv, 4);
    }

    #[test]
    fn close_detected() {
        let (client, server) = pair();
        drop(client);
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn timeout_and_try_recv() {
        let (client, server) = pair();
        assert_eq!(server.try_recv().unwrap(), None);
        assert_eq!(
            server.recv_timeout(Duration::from_millis(10)).unwrap(),
            None
        );
        client.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(Bytes::from_static(b"x"))
        );
    }

    #[test]
    fn connect_refused_is_io_error() {
        // Bind then immediately drop to get a (very likely) dead port.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = TcpConnection::connect(dead).err().expect("must fail");
        assert!(matches!(err, TransportError::Io(_)));
    }

    #[test]
    fn concurrent_senders_interleave_whole_frames() {
        let (client, server) = pair();
        let client = std::sync::Arc::new(client);
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let c = client.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u8 {
                    c.send(Bytes::from(vec![t, i])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = [0u8; 4];
        for _ in 0..200 {
            let f = server.recv().unwrap();
            assert_eq!(f.len(), 2);
            // Frames from each thread arrive in order.
            assert_eq!(f[1], seen[f[0] as usize]);
            seen[f[0] as usize] += 1;
        }
        assert_eq!(seen, [50; 4]);
    }

    /// A raw peer that dies mid-frame is classified `PeerGone`, not a
    /// clean close: the survivor can tell crash from shutdown.
    #[test]
    fn midframe_death_is_peer_gone() {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let mut raw = TcpStream::connect(&addr).unwrap();
        let server = listener.accept().unwrap();
        // Claim a 100-byte frame but deliver only 10 bytes, then die.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 10]).unwrap();
        raw.flush().unwrap();
        drop(raw);
        let err = server.recv().unwrap_err();
        assert!(
            matches!(err, TransportError::PeerGone(_)),
            "expected PeerGone, got {err:?}"
        );
    }

    /// A corrupt length prefix (beyond MAX_FRAME) marks the peer dead
    /// rather than silently dropping the connection.
    #[test]
    fn oversized_length_is_peer_gone() {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let mut raw = TcpStream::connect(&addr).unwrap();
        let server = listener.accept().unwrap();
        raw.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        raw.flush().unwrap();
        let err = server.recv().unwrap_err();
        match err {
            TransportError::PeerGone(reason) => {
                assert!(reason.contains("exceeds limit"), "reason: {reason}")
            }
            other => panic!("expected PeerGone, got {other:?}"),
        }
    }

    /// N frames handed to one coalesced vectored write arrive as N
    /// intact frames — framing survives the single-syscall path.
    #[test]
    fn coalesced_write_preserves_framing() {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let mut raw = TcpStream::connect(&addr).unwrap();
        let server = listener.accept().unwrap();
        let frames: Vec<Bytes> = (0..10u8)
            .map(|i| Bytes::from(vec![i; i as usize * 37]))
            .collect();
        write_frames(&mut raw, &frames).unwrap();
        for f in &frames {
            assert_eq!(&server.recv().unwrap(), f);
        }
    }

    /// Partial-write resumption in `write_segments` never drops or
    /// reorders bytes even when segments are tiny and numerous.
    #[test]
    fn segmented_write_is_byte_exact() {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let mut raw = TcpStream::connect(&addr).unwrap();
        let server = listener.accept().unwrap();
        // One big frame expressed as many odd-sized segments, with the
        // length prefix up front and an empty segment mixed in.
        let body: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let header = (body.len() as u32).to_le_bytes();
        let mut segments: Vec<&[u8]> = vec![&header, &[]];
        segments.extend(body.chunks(7));
        write_segments(&mut raw, &segments).unwrap();
        assert_eq!(server.recv().unwrap(), Bytes::from(body));
    }

    /// Buffered frames are still delivered after the peer dies; the
    /// death reason only surfaces once the queue drains.
    #[test]
    fn buffered_frames_before_death() {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let mut raw = TcpStream::connect(&addr).unwrap();
        let server = listener.accept().unwrap();
        // One complete frame, then a truncated one.
        raw.write_all(&3u32.to_le_bytes()).unwrap();
        raw.write_all(b"abc").unwrap();
        raw.write_all(&50u32.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        drop(raw);
        assert_eq!(server.recv().unwrap(), Bytes::from_static(b"abc"));
        assert!(matches!(
            server.recv().unwrap_err(),
            TransportError::PeerGone(_)
        ));
    }
}
