//! TCP transport: length-prefixed frames over real sockets.
//!
//! This is the deployment transport — the overlay network actually
//! crosses process and host boundaries, exactly as the original
//! MRNet's socket layer does. Each frame is a `u32` little-endian
//! length followed by that many payload bytes. A background reader
//! thread pumps inbound frames into a channel so that the non-blocking
//! `try_recv`/`recv_timeout` used by internal-process event loops work
//! uniformly across transports.

use std::io::{BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::connection::{
    BoxedConnection, BoxedListener, ConnCounters, ConnStats, Connection, Listener,
};
use crate::error::{Result, TransportError};

/// Maximum accepted frame size; protects against corrupt length
/// prefixes.
pub const MAX_FRAME: u32 = 256 << 20;

/// How many inbound frames may queue before the reader thread applies
/// back-pressure to the socket.
const INBOUND_DEPTH: usize = 1024;

/// One end of a TCP connection carrying length-prefixed frames.
pub struct TcpConnection {
    writer: Mutex<BufWriter<TcpStream>>,
    inbound: Receiver<Bytes>,
    peer: String,
    counters: ConnCounters,
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    // EOF at a frame boundary is a clean close.
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(Bytes::from(payload)))
}

fn spawn_reader(mut stream: TcpStream, tx: Sender<Bytes>) {
    std::thread::Builder::new()
        .name("mrnet-tcp-reader".to_owned())
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(Some(frame)) => {
                    if tx.send(frame).is_err() {
                        return; // local side dropped the connection
                    }
                }
                Ok(None) | Err(_) => return, // peer closed / socket error
            }
        })
        .expect("spawn tcp reader thread");
}

impl TcpConnection {
    fn from_stream(stream: TcpStream) -> Result<TcpConnection> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_owned());
        let reader_stream = stream.try_clone()?;
        let (tx, rx) = bounded(INBOUND_DEPTH);
        spawn_reader(reader_stream, tx);
        Ok(TcpConnection {
            writer: Mutex::new(BufWriter::new(stream)),
            inbound: rx,
            peer,
            counters: ConnCounters::default(),
        })
    }

    /// Connects to a listening MRNet process.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpConnection> {
        let stream = TcpStream::connect(addr)?;
        TcpConnection::from_stream(stream)
    }
}

impl Drop for TcpConnection {
    fn drop(&mut self) {
        // The reader thread holds a cloned FD; without an explicit
        // shutdown the socket would stay open (and the peer would
        // never see EOF) until that thread exits — which it only does
        // on EOF. Shut both directions down to break the cycle.
        let writer = self.writer.lock();
        let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
    }
}

impl Connection for TcpConnection {
    fn send(&self, frame: Bytes) -> Result<()> {
        let mut writer = self.writer.lock();
        writer.write_all(&(frame.len() as u32).to_le_bytes())?;
        writer.write_all(&frame)?;
        writer.flush()?;
        self.counters.note_sent(frame.len());
        Ok(())
    }

    fn recv(&self) -> Result<Bytes> {
        let frame = self.inbound.recv().map_err(|_| TransportError::Closed)?;
        self.counters.note_recv(frame.len());
        Ok(frame)
    }

    fn try_recv(&self) -> Result<Option<Bytes>> {
        match self.inbound.try_recv() {
            Ok(frame) => {
                self.counters.note_recv(frame.len());
                Ok(Some(frame))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>> {
        match self.inbound.recv_timeout(timeout) {
            Ok(frame) => {
                self.counters.note_recv(frame.len());
                Ok(Some(frame))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn stats(&self) -> ConnStats {
        self.counters.snapshot()
    }
}

/// A bound TCP listener accepting MRNet connections.
pub struct TcpTransportListener {
    listener: TcpListener,
    addr: String,
}

impl TcpTransportListener {
    /// Binds to `addr`; use port 0 to let the OS pick (the chosen
    /// address is available via [`Listener::addr`], which is how leaf
    /// processes publish their rendezvous points in mode-2
    /// instantiation).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<TcpTransportListener> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        Ok(TcpTransportListener { listener, addr })
    }

    /// Boxes this listener.
    pub fn boxed(self) -> BoxedListener {
        Box::new(self)
    }
}

impl Listener for TcpTransportListener {
    fn accept(&self) -> Result<BoxedConnection> {
        let (stream, _) = self.listener.accept()?;
        Ok(Box::new(TcpConnection::from_stream(stream)?))
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpConnection, BoxedConnection) {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let client = TcpConnection::connect(&addr).unwrap();
        let server = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_round_trip() {
        let (client, server) = pair();
        client.send(Bytes::from_static(b"hello overlay")).unwrap();
        assert_eq!(server.recv().unwrap(), Bytes::from_static(b"hello overlay"));
        server.send(Bytes::from_static(b"ack")).unwrap();
        assert_eq!(client.recv().unwrap(), Bytes::from_static(b"ack"));
    }

    #[test]
    fn empty_frames_allowed() {
        let (client, server) = pair();
        client.send(Bytes::new()).unwrap();
        assert_eq!(server.recv().unwrap(), Bytes::new());
    }

    #[test]
    fn large_frame() {
        let (client, server) = pair();
        let big = Bytes::from(vec![0xAB; 1 << 20]);
        client.send(big.clone()).unwrap();
        assert_eq!(server.recv().unwrap(), big);
    }

    #[test]
    fn many_ordered_frames() {
        let (client, server) = pair();
        for i in 0..200u32 {
            client
                .send(Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        for i in 0..200u32 {
            let f = server.recv().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn stats_count_payload_bytes() {
        let (client, server) = pair();
        client.send(Bytes::from_static(b"abcd")).unwrap();
        assert_eq!(server.recv().unwrap().len(), 4);
        let cs = client.stats();
        assert_eq!(cs.frames_sent, 1);
        assert_eq!(cs.bytes_sent, 4); // payload only, not the length prefix
        let ss = server.stats();
        assert_eq!(ss.frames_recv, 1);
        assert_eq!(ss.bytes_recv, 4);
    }

    #[test]
    fn close_detected() {
        let (client, server) = pair();
        drop(client);
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn timeout_and_try_recv() {
        let (client, server) = pair();
        assert_eq!(server.try_recv().unwrap(), None);
        assert_eq!(
            server.recv_timeout(Duration::from_millis(10)).unwrap(),
            None
        );
        client.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(Bytes::from_static(b"x"))
        );
    }

    #[test]
    fn connect_refused_is_io_error() {
        // Bind then immediately drop to get a (very likely) dead port.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = TcpConnection::connect(dead).err().expect("must fail");
        assert!(matches!(err, TransportError::Io(_)));
    }

    #[test]
    fn concurrent_senders_interleave_whole_frames() {
        let (client, server) = pair();
        let client = std::sync::Arc::new(client);
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let c = client.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u8 {
                    c.send(Bytes::from(vec![t, i])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = [0u8; 4];
        for _ in 0..200 {
            let f = server.recv().unwrap();
            assert_eq!(f.len(), 2);
            // Frames from each thread arrive in order.
            assert_eq!(f[1], seen[f[0] as usize]);
            seen[f[0] as usize] += 1;
        }
        assert_eq!(seen, [50; 4]);
    }
}
