//! Send-pipeline backpressure tests: a peer that stops reading must
//! not stall the sender's thread until the bounded outbound queue
//! itself fills, and even then only for sends *to that peer* — sibling
//! connections keep flowing. Exercises the overflow policy
//! (`try_send` → `WouldBlock`) and writer-side `PeerGone` detection.
//!
//! The queue depth is pinned small via `MRNET_SEND_QUEUE` so the tests
//! fill it quickly. The variable is read per-connection at
//! construction time; tests that need different depths therefore set
//! it before creating their connections. Serialise on a process-wide
//! lock so the env var never races between tests.

use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use mrnet_transport::{
    Connection, Listener, TcpConnection, TcpTransportListener, TransportError, SEND_QUEUE_ENV,
};

fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A sender whose peer is a raw socket the test never reads from.
fn sender_with_silent_peer() -> (TcpConnection, TcpStream) {
    let std_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = std_listener.local_addr().unwrap();
    let accept = std::thread::spawn(move || std_listener.accept().unwrap().0);
    let client = TcpConnection::connect(addr).unwrap();
    let raw = accept.join().unwrap();
    (client, raw)
}

/// Fills the silent peer's pipeline: the kernel socket buffers plus
/// the writer's bounded queue. Returns once `try_send` reports
/// `WouldBlock`.
fn fill_pipeline(conn: &TcpConnection, frame: &Bytes) -> usize {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut queued = 0;
    loop {
        match conn.try_send(frame.clone()) {
            Ok(()) => queued += 1,
            Err(TransportError::WouldBlock) => return queued,
            Err(e) => panic!("unexpected send error while filling: {e}"),
        }
        assert!(
            Instant::now() < deadline,
            "pipeline never filled after {queued} frames — is the queue unbounded?"
        );
    }
}

/// One slow child saturates only its own queue: `try_send` surfaces a
/// typed `WouldBlock` (frame not enqueued), the stall is counted, and
/// a sibling connection keeps sending and receiving the whole time.
#[test]
fn slow_reader_blocks_only_its_own_connection() {
    let _guard = env_lock();
    std::env::set_var(SEND_QUEUE_ENV, "8");
    let (slow_conn, _slow_raw) = sender_with_silent_peer();
    // Sibling: a normal pair that reads promptly.
    let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.addr();
    let sibling = TcpConnection::connect(&addr).unwrap();
    let sibling_peer = listener.accept().unwrap();
    std::env::remove_var(SEND_QUEUE_ENV);

    // Use frames big enough (64 KiB) that the kernel buffers fill in
    // a few hundred frames, then the 8-slot queue right after.
    let frame = Bytes::from(vec![0x5A; 64 << 10]);
    let queued = fill_pipeline(&slow_conn, &frame);
    assert!(queued > 0, "at least the queue itself must accept frames");

    // The pipeline is jammed; a non-blocking send still refuses fast
    // and typed, and the frame is NOT lost from the caller's hands.
    assert!(matches!(
        slow_conn.try_send(frame.clone()),
        Err(TransportError::WouldBlock)
    ));
    assert!(slow_conn.stats().enqueue_stalls >= 2);
    assert!(slow_conn.stats().queue_depth > 0);

    // Sibling sends complete promptly despite the jammed neighbour:
    // the writer threads are independent.
    let start = Instant::now();
    for i in 0..100u32 {
        sibling
            .send(Bytes::copy_from_slice(&i.to_le_bytes()))
            .unwrap();
    }
    for i in 0..100u32 {
        let f = sibling_peer.recv().unwrap();
        assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "sibling traffic stalled behind the slow reader"
    );
}

/// Once the silent peer finally reads, the jammed queue drains and
/// every frame arrives intact and in order: backpressure delays, it
/// never drops.
#[test]
fn jammed_queue_drains_when_peer_resumes() {
    let _guard = env_lock();
    std::env::set_var(SEND_QUEUE_ENV, "8");
    let (conn, raw) = sender_with_silent_peer();
    std::env::remove_var(SEND_QUEUE_ENV);

    let frame = Bytes::from(vec![0xC3; 64 << 10]);
    let queued = fill_pipeline(&conn, &frame);

    // Peer wakes up: wrap the raw socket in a reader and drain.
    use std::io::Read;
    let mut raw = raw;
    let mut received = 0usize;
    let mut buf = Vec::new();
    while received < queued {
        let mut len_buf = [0u8; 4];
        raw.read_exact(&mut len_buf).unwrap();
        let len = u32::from_le_bytes(len_buf) as usize;
        buf.resize(len, 0);
        raw.read_exact(&mut buf).unwrap();
        assert_eq!(buf.len(), frame.len());
        assert!(buf.iter().all(|&b| b == 0xC3));
        received += 1;
    }
    assert_eq!(received, queued);
}

/// When the peer dies with frames still queued, a subsequent send
/// fails with the writer's `PeerGone` classification — not a panic,
/// not silence — and sent-frame accounting never counts the frames
/// that died in the queue.
#[test]
fn writer_detects_peer_gone_and_accounting_stays_honest() {
    let _guard = env_lock();
    std::env::set_var(SEND_QUEUE_ENV, "8");
    let (conn, raw) = sender_with_silent_peer();
    std::env::remove_var(SEND_QUEUE_ENV);

    let frame = Bytes::from(vec![0x11; 64 << 10]);
    let queued = fill_pipeline(&conn, &frame) as u64;

    // Kill the peer outright. It dies with unread data in its receive
    // buffer, so the close goes out as a TCP reset (not a clean FIN);
    // the writer's next in-flight write fails, records PeerGone, and
    // shuts down.
    drop(raw);

    // Sends eventually report peer loss with the writer's diagnosis.
    let deadline = Instant::now() + Duration::from_secs(10);
    let err = loop {
        match conn.send(frame.clone()) {
            Ok(()) => assert!(
                Instant::now() < deadline,
                "sends kept succeeding after peer death"
            ),
            Err(e) => break e,
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        err.is_peer_loss(),
        "expected a peer-loss error, got {err:?}"
    );

    // Honest accounting: frames_sent only counts frames that reached
    // the socket, so it can never exceed what was queued.
    assert!(conn.stats().frames_sent <= queued);
}

/// A burst of frames enqueued faster than the writer drains them is
/// coalesced into multi-frame vectored writes, visible in the
/// `frames_coalesced` counter, with ordering preserved end-to-end.
#[test]
fn burst_coalesces_frames() {
    let _guard = env_lock();
    let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.addr();
    let client = TcpConnection::connect(&addr).unwrap();
    let server = listener.accept().unwrap();

    const BURST: u32 = 2_000;
    for i in 0..BURST {
        client
            .send(Bytes::copy_from_slice(&i.to_le_bytes()))
            .unwrap();
    }
    for i in 0..BURST {
        let f = server.recv().unwrap();
        assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
    }
    // With 2000 tiny frames racing one writer thread, at least some
    // wake-ups must have found more than one frame queued.
    assert!(
        client.stats().frames_coalesced > 0,
        "no coalescing observed across a {BURST}-frame burst"
    );
    assert_eq!(client.stats().frames_sent, BURST as u64);
}
