//! Heartbeat-based silent-peer detection.
//!
//! These tests live in their own integration-test binary because they
//! set `MRNET_HEARTBEAT_SECS` process-wide; keeping them out of the
//! unit-test binary prevents the env var from leaking into unrelated
//! transport tests running in parallel threads.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use bytes::Bytes;
use mrnet_transport::{
    Connection, Listener, TcpConnection, TcpTransportListener, TransportError, HEARTBEAT_ENV,
};

const INTERVAL: f64 = 0.1;

fn enable_heartbeats() {
    std::env::set_var(HEARTBEAT_ENV, format!("{INTERVAL}"));
}

/// Two heartbeat-enabled endpoints stay healthy through an idle period
/// far longer than the death deadline: keepalives count as liveness.
#[test]
fn idle_heartbeating_peers_stay_alive() {
    enable_heartbeats();
    let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
    let client = TcpConnection::connect(listener.addr()).unwrap();
    let server = listener.accept().unwrap();

    // Idle for 6 intervals — twice the 3-interval silence deadline.
    std::thread::sleep(Duration::from_secs_f64(INTERVAL * 6.0));

    // Both directions still work, and no heartbeat marker ever
    // surfaces as a frame.
    assert_eq!(server.try_recv().unwrap(), None);
    client.send(Bytes::from_static(b"still here")).unwrap();
    assert_eq!(
        server.recv_timeout(Duration::from_secs(2)).unwrap(),
        Some(Bytes::from_static(b"still here"))
    );
    server.send(Bytes::from_static(b"ack")).unwrap();
    assert_eq!(
        client.recv_timeout(Duration::from_secs(2)).unwrap(),
        Some(Bytes::from_static(b"ack"))
    );
}

/// A raw peer that connects but never sends anything (no data, no
/// heartbeats) is declared dead after ~3 silent intervals even though
/// its socket stays open — the half-open/frozen-peer case EOF
/// detection cannot catch.
#[test]
fn silent_peer_is_declared_gone() {
    enable_heartbeats();
    let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.addr();
    // Keep the raw socket alive (no FIN) but mute for the whole test.
    let raw = TcpStream::connect(&addr).unwrap();
    let server = listener.accept().unwrap();

    let start = std::time::Instant::now();
    let err = loop {
        match server.recv_timeout(Duration::from_millis(50)) {
            Ok(None) => {
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "silent peer never declared dead"
                );
            }
            Ok(Some(frame)) => panic!("unexpected frame from silent peer: {frame:?}"),
            Err(e) => break e,
        }
    };
    match err {
        TransportError::PeerGone(reason) => {
            assert!(
                reason.contains("no data or heartbeat"),
                "unexpected reason: {reason}"
            );
        }
        other => panic!("expected PeerGone, got {other:?}"),
    }
    // Dead no earlier than the 3-interval deadline.
    assert!(start.elapsed() >= Duration::from_secs_f64(INTERVAL * 3.0));
    drop(raw);
}

/// A peer that stalls mid-frame (length prefix sent, payload never
/// completed) trips the mid-frame stall deadline.
#[test]
fn midframe_stall_is_declared_gone() {
    enable_heartbeats();
    let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.addr();
    let mut raw = TcpStream::connect(&addr).unwrap();
    let server = listener.accept().unwrap();

    // Promise 64 bytes, deliver 8, then go quiet without closing.
    raw.write_all(&64u32.to_le_bytes()).unwrap();
    raw.write_all(&[7u8; 8]).unwrap();
    raw.flush().unwrap();

    let start = std::time::Instant::now();
    let err = loop {
        match server.recv_timeout(Duration::from_millis(50)) {
            Ok(None) => {
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "stalled peer never declared dead"
                );
            }
            Ok(Some(frame)) => panic!("truncated frame surfaced: {frame:?}"),
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, TransportError::PeerGone(_)),
        "expected PeerGone, got {err:?}"
    );
    drop(raw);
}
