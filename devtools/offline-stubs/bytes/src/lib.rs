//! Offline stub of the `bytes` crate covering exactly the API surface
//! this workspace uses: `Bytes`, `BytesMut`, and the `Buf`/`BufMut`
//! traits with little-endian accessors.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copies in this stub).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Reserves additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> BytesMut {
        BytesMut { inner: v.to_vec() }
    }
}

/// Read access to a byte cursor.
#[allow(missing_docs)]
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The current contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut off = 0;
        while off < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&chunk[..n]);
            self.advance(n);
            off += n;
        }
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write access to a growable byte buffer.
#[allow(missing_docs)]
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
