//! Resolution-only stub of `criterion`. Satisfies the dependency graph
//! offline; bench targets must be skipped when building against this
//! stub.
