//! Offline stub of `crossbeam` implementing only the `channel` module
//! surface this workspace uses: `unbounded`, `bounded`, cloneable
//! `Sender`/`Receiver`, and the recv error types.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned when sending on a channel with no receivers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity; the message is returned.
        Full(T),
        /// All receivers dropped; the message is returned.
        Disconnected(T),
    }

    /// Error returned when receiving on a channel with no senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .inner
                            .cv
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => {
                        st.queue.push_back(msg);
                        self.inner.cv.notify_all();
                        return Ok(());
                    }
                }
            }
        }

        /// Sends without blocking: fails with [`TrySendError::Full`]
        /// when a bounded channel is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => Err(TrySendError::Full(msg)),
                _ => {
                    st.queue.push_back(msg);
                    self.inner.cv.notify_all();
                    Ok(())
                }
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.lock().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.inner.lock().senders -= 1;
            self.inner.cv.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every
        /// sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.inner.cv.notify_all();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .inner
                    .cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.lock();
            if let Some(msg) = st.queue.pop_front() {
                self.inner.cv.notify_all();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.inner.cv.notify_all();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .inner
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.lock().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.lock().receivers -= 1;
            self.inner.cv.notify_all();
        }
    }
}
