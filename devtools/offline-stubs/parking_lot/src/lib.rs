//! Offline stub of `parking_lot` backed by `std::sync` primitives.
//! Poisoning is swallowed to match parking_lot's non-poisoning API.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion lock (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
