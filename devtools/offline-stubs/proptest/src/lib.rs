//! Resolution-only stub of `proptest`. Satisfies the dependency graph
//! offline; the `proptest_*` test targets that actually use the macros
//! must be skipped when building against this stub.
