//! Offline stub of `rand` implementing the surface this workspace
//! uses: `SmallRng::seed_from_u64` plus `Rng::gen_range` over integer
//! and float ranges. The generator is a xorshift64* — deterministic
//! and fine for simulation/benchmark inputs, not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * frac as $ty
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng { state }
        }
    }
}
