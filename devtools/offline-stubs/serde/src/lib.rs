//! Offline stub of `serde`: marker traits plus no-op derive macros.
//! The workspace only *derives* these traits (topology specs) and never
//! serializes through them offline, so empty impls suffice.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
