//! No-op `serde_derive` stand-in: accepts the derive (and `#[serde]`
//! attributes) and expands to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
