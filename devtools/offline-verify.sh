#!/bin/sh
# Runs a cargo command against the offline stub crates in
# devtools/offline-stubs/ by temporarily rewiring the workspace's
# external dependencies to path dependencies (a [patch] section cannot
# do this: cargo still queries the registry index for unpatched
# versions). The manifest is restored on exit.
#
# Usage: devtools/offline-verify.sh <cargo args...>
#   e.g. devtools/offline-verify.sh build --release
#        devtools/offline-verify.sh test -p mrnet --lib
set -eu
cd "$(dirname "$0")/.."

cp Cargo.toml devtools/.Cargo.toml.orig
trap 'mv devtools/.Cargo.toml.orig Cargo.toml' EXIT INT TERM

sed -i \
  -e 's|^rand = "0.8"$|rand = { path = "devtools/offline-stubs/rand", version = "0.8" }|' \
  -e 's|^proptest = "1"$|proptest = { path = "devtools/offline-stubs/proptest", version = "1" }|' \
  -e 's|^criterion = "0.5"$|criterion = { path = "devtools/offline-stubs/criterion", version = "0.5" }|' \
  -e 's|^crossbeam = "0.8"$|crossbeam = { path = "devtools/offline-stubs/crossbeam", version = "0.8" }|' \
  -e 's|^parking_lot = "0.12"$|parking_lot = { path = "devtools/offline-stubs/parking_lot", version = "0.12" }|' \
  -e 's|^bytes = "1"$|bytes = { path = "devtools/offline-stubs/bytes", version = "1" }|' \
  -e 's|^serde = { version = "1", features = \["derive"\] }$|serde = { path = "devtools/offline-stubs/serde", version = "1", features = ["derive"] }|' \
  Cargo.toml

cargo "$@"
