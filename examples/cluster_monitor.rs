//! A cluster-monitoring tool in the style the paper positions MRNet
//! for ("performance and system administration tools", §1; compare
//! Ganglia/Supermon in §5): every node reports load, memory, and disk
//! statistics; the tree computes min / max / sum / exact mean without
//! the front-end ever touching per-node messages.
//!
//! Run with: `cargo run --example cluster_monitor -- [nodes] [rounds]`

use std::time::Duration;

use mrnet::{MeanPairFilter, NetworkBuilder, SyncMode, Value};
use mrnet_topology::{generator, HostPool};

struct NodeStats {
    load: f64,
    free_mem_mb: f64,
}

/// Deterministic per-node fake statistics (a stand-in for /proc).
fn read_stats(rank: u32, round: u32) -> NodeStats {
    let r = f64::from(rank);
    let t = f64::from(round);
    NodeStats {
        load: (0.3 + 0.17 * r + 0.05 * t) % 4.0,
        free_mem_mb: 1500.0 - 37.0 * ((r + t) % 13.0),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let rounds: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let topo = generator::balanced_for(8, nodes, &mut HostPool::synthetic(4096)).expect("topology");
    let deployment = NetworkBuilder::new(topo).launch().expect("instantiate");
    let net = deployment.network.clone();
    println!(
        "monitoring {} nodes, {} rounds\n",
        net.num_backends(),
        rounds
    );

    // Monitor agents: answer each poll with the requested statistic.
    let agents: Vec<_> = deployment
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || loop {
                match be.recv() {
                    Ok((pkt, sid)) => {
                        let round = pkt.get(0).and_then(Value::as_u32).unwrap_or(0);
                        let stats = read_stats(be.rank(), round);
                        let reply = match pkt.tag() {
                            1 => Value::Double(stats.load),
                            2 => Value::Double(stats.free_mem_mb),
                            // Mean pair contribution: (sum, count).
                            3 => {
                                be.send_packet(MeanPairFilter::contribution(sid, 3, stats.load))
                                    .ok();
                                continue;
                            }
                            _ => continue,
                        };
                        be.send(sid, pkt.tag(), "%lf", vec![reply]).ok();
                    }
                    Err(_) => return, // shutdown
                }
            })
        })
        .collect();

    let comm = net.broadcast_communicator();
    let reg = net.registry();
    let max_load = net
        .new_stream(&comm, reg.id_of("lf_max").unwrap(), SyncMode::WaitForAll)
        .unwrap();
    let min_mem = net
        .new_stream(&comm, reg.id_of("lf_min").unwrap(), SyncMode::WaitForAll)
        .unwrap();
    let mean_load = net
        .new_stream(&comm, reg.id_of("mean_pair").unwrap(), SyncMode::WaitForAll)
        .unwrap();

    for round in 0..rounds {
        // All three collections run as concurrent asynchronous
        // collective operations on separate streams (§1).
        max_load.send(1, "%ud", vec![Value::UInt32(round)]).unwrap();
        min_mem.send(2, "%ud", vec![Value::UInt32(round)]).unwrap();
        mean_load
            .send(3, "%ud", vec![Value::UInt32(round)])
            .unwrap();

        let max = max_load
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .get(0)
            .and_then(Value::as_f64)
            .unwrap();
        let min = min_mem
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .get(0)
            .and_then(Value::as_f64)
            .unwrap();
        let mean_pkt = mean_load.recv_timeout(Duration::from_secs(10)).unwrap();
        let mean = MeanPairFilter::finish(&mean_pkt).unwrap();

        println!("round {round}: max load {max:.2}, mean load {mean:.2}, min free mem {min:.0} MB");
    }

    net.shutdown();
    for a in agents {
        a.join().unwrap();
    }
    println!("\nmonitor shut down cleanly");
}
