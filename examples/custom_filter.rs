//! Loading a custom filter — the `load_filterFunc` workflow of §2.4.
//!
//! Implements a histogram filter (the paper notes Paradyn "uses a
//! custom histogram filter to place its back-ends into equivalence
//! classes"): back-ends submit scalar measurements; each internal
//! process merges per-bucket counts, so the front-end receives one
//! complete histogram no matter how many back-ends report.
//!
//! Run with: `cargo run --example custom_filter -- [backends]`

use mrnet::{
    FilterRegistry, FnFilter, FormatString, NetworkBuilder, PacketBuilder, SyncMode, Value,
};
use mrnet_topology::{generator, HostPool};

const BUCKETS: usize = 8;
const BUCKET_WIDTH: f64 = 0.125;

/// Registers the histogram filter. Back-ends send `%alf [value]`
/// (raw measurements); internal processes send `%alf [count; BUCKETS]`
/// (partial histograms). The filter distinguishes the two by length.
fn register_histogram(registry: &FilterRegistry) {
    registry
        .register("histogram8", || {
            let fmt = FormatString::parse("%alf").expect("static format");
            Box::new(FnFilter::new(
                "histogram8",
                Some(fmt),
                (),
                |_, inputs, _ctx| {
                    let mut counts = [0.0f64; BUCKETS];
                    for pkt in &inputs {
                        let data = pkt.get(0).and_then(Value::as_f64_slice).unwrap_or_default();
                        if data.len() == BUCKETS {
                            for (c, d) in counts.iter_mut().zip(data) {
                                *c += d;
                            }
                        } else {
                            for &v in data {
                                let bucket = ((v / BUCKET_WIDTH) as usize).min(BUCKETS - 1);
                                counts[bucket] += 1.0;
                            }
                        }
                    }
                    let first = &inputs[0];
                    Ok(vec![PacketBuilder::new(first.stream_id(), first.tag())
                        .push(counts.to_vec())
                        .build()])
                },
            ))
        })
        .expect("register histogram");
}

fn main() {
    let backends: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(27);

    let registry = FilterRegistry::with_builtins();
    register_histogram(&registry); // load_filterFunc("histogram8", ...)

    let topo =
        generator::balanced_for(3, backends, &mut HostPool::synthetic(1024)).expect("topology");
    let deployment = NetworkBuilder::new(topo)
        .registry(registry)
        .launch()
        .expect("instantiate");
    let net = deployment.network.clone();

    let agent_threads: Vec<_> = deployment
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                if let Ok((_, sid)) = be.recv() {
                    // Each back-end's "measurement": deterministic
                    // pseudo-random value in [0, 1).
                    let v = f64::from(be.rank().wrapping_mul(2654435761) % 1000) / 1000.0;
                    be.send(sid, 0, "%alf", vec![Value::DoubleArray(vec![v])])
                        .ok();
                }
            })
        })
        .collect();

    let comm = net.broadcast_communicator();
    let hist_id = net.registry().id_of("histogram8").expect("loaded filter");
    let stream = net
        .new_stream(&comm, hist_id, SyncMode::WaitForAll)
        .expect("stream");
    stream.send(0, "%d", vec![Value::Int32(0)]).expect("poll");

    let result = stream.recv().expect("histogram");
    let counts = result
        .get(0)
        .and_then(Value::as_f64_slice)
        .expect("bucket counts");
    println!("distribution of {backends} back-end measurements:");
    let total: f64 = counts.iter().sum();
    for (i, &c) in counts.iter().enumerate() {
        let lo = i as f64 * BUCKET_WIDTH;
        let bar = "#".repeat(c as usize);
        println!("  [{:.3}..{:.3})  {:>3}  {}", lo, lo + BUCKET_WIDTH, c, bar);
    }
    assert_eq!(
        total as usize, backends,
        "every measurement lands in a bucket"
    );

    net.shutdown();
    for t in agent_threads {
        t.join().unwrap();
    }
    println!("done");
}
