//! Fault tolerance, live: a real multi-process tree loses a commnode
//! to SIGKILL. The front-end hears about the whole lost subtree as a
//! `TopologyEvent::RankFailed`, the WaitForAll stream keeps completing
//! waves from the survivors, and once every member is dead the stream
//! reports `AllEndpointsFailed` instead of hanging.
//!
//! Build the commnode binary first, then run:
//! ```text
//! cargo build -p mrnet --bins
//! cargo run --example fault_tolerance
//! ```

use std::path::PathBuf;
use std::time::Duration;

use mrnet::{launch_processes, Backend, MrnetError, SyncMode, TopologyEvent, Value};
use mrnet_topology::{generator, HostPool};

const TIMEOUT: Duration = Duration::from_secs(20);

/// Locates `mrnet_commnode` next to this example's own binary.
fn find_commnode() -> Option<PathBuf> {
    let me = std::env::current_exe().ok()?;
    let profile_dir = me.parent()?.parent()?;
    let candidate = profile_dir.join("mrnet_commnode");
    candidate.exists().then_some(candidate)
}

fn sigkill(pid: u32) {
    let ok = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    assert!(ok, "kill -9 {pid}");
}

fn main() {
    let Some(commnode) = find_commnode() else {
        eprintln!("mrnet_commnode binary not found — run `cargo build -p mrnet --bins` first");
        std::process::exit(1);
    };

    // FE (this process) -> 2 commnode processes -> 4 back-ends.
    let topo = generator::balanced(2, 2, &mut HostPool::synthetic(16)).expect("topology");
    let pending = launch_processes(topo, &commnode).expect("spawn internal tree");
    let commnode_pids = pending.commnode_pids().to_vec();
    println!("commnode processes: {commnode_pids:?}");
    let points = pending.collect_attach_points(TIMEOUT).expect("rendezvous");

    // Back-ends echo their rank on every wave until their link dies.
    let backends: Vec<_> = points
        .into_iter()
        .map(|ap| {
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&ap.endpoint, ap.rank).expect("attach");
                while let Ok((_pkt, stream)) = be.recv() {
                    let _ = be.send(stream, 0, "%d", vec![Value::Int32(ap.rank as i32)]);
                }
            })
        })
        .collect();

    let net = pending.wait(TIMEOUT).expect("tree ready");
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").expect("built-in");
    let stream = net
        .new_stream(&comm, sum, SyncMode::WaitForAll)
        .expect("stream");

    stream.send(0, "%d", vec![Value::Int32(0)]).expect("wave 1");
    let full = stream.recv_timeout(TIMEOUT).expect("full aggregate");
    println!(
        "wave 1, everyone alive: sum of ranks = {}",
        full.get(0).and_then(Value::as_i32).unwrap()
    );

    println!("SIGKILL commnode pid {} ...", commnode_pids[0]);
    sigkill(commnode_pids[0]);
    let TopologyEvent::RankFailed { rank, subtree } =
        net.next_event_timeout(TIMEOUT).expect("failure event");
    println!("event: rank {rank} failed, taking end-points {subtree:?} with it");
    println!("cumulative failed set: {:?}", net.failed_ranks());

    stream.send(0, "%d", vec![Value::Int32(0)]).expect("wave 2");
    let partial = stream.recv_timeout(TIMEOUT).expect("survivor aggregate");
    println!(
        "wave 2, pruned stream: sum of surviving ranks = {}",
        partial.get(0).and_then(Value::as_i32).unwrap()
    );

    println!("SIGKILL commnode pid {} ...", commnode_pids[1]);
    sigkill(commnode_pids[1]);
    let TopologyEvent::RankFailed { rank, subtree } =
        net.next_event_timeout(TIMEOUT).expect("failure event");
    println!("event: rank {rank} failed, taking end-points {subtree:?} with it");

    match stream.recv_timeout(TIMEOUT) {
        Err(MrnetError::AllEndpointsFailed) => {
            println!("stream with no members left reports AllEndpointsFailed — no hang");
        }
        other => panic!("expected AllEndpointsFailed, got {other:?}"),
    }

    net.shutdown();
    for b in backends {
        b.join().unwrap();
    }
    println!("done");
}
