//! A Paradyn-style parallel performance tool (the paper's §3 use
//! case): full eleven-activity start-up protocol — equivalence-class
//! resource reporting, clock-skew detection, MDL metric distribution —
//! followed by distributed time-aligned performance-data aggregation.
//!
//! Run with: `cargo run --example perf_tool -- [daemons] [fanout]`

use std::time::Duration;

use mrnet::NetworkBuilder;
use mrnet_topology::{generator, HostPool, TreeStats};
use paradyn::{app::Executable, mdl, paradyn_registry, run_sampling, run_startup, Daemon};

fn main() {
    let mut args = std::env::args().skip(1);
    let daemons: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let fanout: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let metrics = 4usize;

    let topo =
        generator::balanced_for(fanout, daemons, &mut HostPool::synthetic(4096)).expect("topology");
    let stats = TreeStats::of(&topo);
    println!(
        "tool topology: {} daemons, {} internal processes, depth {}, fan-out {}",
        stats.backends, stats.internals, stats.depth, stats.max_fanout
    );

    let deployment = NetworkBuilder::new(topo)
        .registry(paradyn_registry())
        .launch()
        .expect("instantiate");
    let net = deployment.network.clone();

    // The daemons monitor an smg2000-like application (434 functions).
    let exe = Executable::synthetic_smg2000(7);
    let daemon_threads: Vec<_> = deployment
        .backends
        .into_iter()
        .enumerate()
        .map(|(i, be)| {
            let exe = exe.clone();
            std::thread::spawn(move || {
                let d = Daemon::new(be, exe, format!("node{i:03}"), 9000 + i as u32);
                d.serve(metrics, 5.0, Duration::from_secs(3))
            })
        })
        .collect();

    // Start-up phase, timed per activity (the Figure 8b breakdown).
    let mdl_doc = mdl::to_mdl(&mdl::standard_metrics(metrics));
    let outcome = run_startup(&net, &mdl_doc, 5).expect("start-up");
    println!("\nstart-up activity latencies:");
    for (activity, latency) in &outcome.timings {
        println!(
            "  {:<28} {:>9.3} ms{}",
            activity.name(),
            latency.as_secs_f64() * 1e3,
            if activity.uses_aggregation() {
                "  [MRNet aggregation]"
            } else {
                ""
            }
        );
    }
    println!("  total: {:.1} ms", outcome.total().as_secs_f64() * 1e3);
    println!(
        "\ncode resources: {} classes over {} daemons; representative reported {} resources",
        outcome.code_classes.len(),
        daemons,
        outcome.code_resources.len()
    );
    let max_skew = outcome.skews.values().fold(0.0f64, |m, s| m.max(s.abs()));
    println!(
        "clock skew estimates: {} daemons, max |skew| {max_skew:.6} s",
        outcome.skews.len()
    );

    // Performance-data phase: 5 samples/s/metric/daemon, aggregated
    // through the tree by the custom time-aligned filter.
    println!("\ncollecting performance data ({metrics} metrics, 3 s)...");
    let (stats, _streams) = run_sampling(&net, metrics, Duration::from_secs(3)).expect("sampling");
    let offered = daemons as f64 * metrics as f64 * 5.0 * stats.elapsed.as_secs_f64();
    println!(
        "front-end received {} aggregated samples (offered ≈ {:.0} raw samples; \
         aggregation reduced arrivals by {:.0}x)",
        stats.received,
        offered,
        offered / stats.received.max(1) as f64
    );

    net.shutdown();
    let mut total_sent = 0usize;
    for t in daemon_threads {
        if let Ok(Ok(sent)) = t.join() {
            total_sent += sent;
        }
    }
    println!("daemons sent {total_sent} raw samples in total");
}
