//! The full multi-process deployment: real `mrnet_commnode` OS
//! processes created recursively per §2.5, connected over TCP, with
//! back-ends attaching at advertised rendezvous points.
//!
//! Build the commnode binary first, then run:
//! ```text
//! cargo build -p mrnet --bins
//! cargo run --example process_overlay
//! ```

use std::path::PathBuf;
use std::time::Duration;

use mrnet::{launch_processes, Backend, SyncMode, Value};
use mrnet_topology::{generator, HostPool};

/// Locates `mrnet_commnode` next to this example's own binary
/// (`target/<profile>/examples/process_overlay` →
/// `target/<profile>/mrnet_commnode`).
fn find_commnode() -> Option<PathBuf> {
    let me = std::env::current_exe().ok()?;
    let profile_dir = me.parent()?.parent()?;
    let candidate = profile_dir.join("mrnet_commnode");
    candidate.exists().then_some(candidate)
}

fn main() {
    let Some(commnode) = find_commnode() else {
        eprintln!("mrnet_commnode binary not found — run `cargo build -p mrnet --bins` first");
        std::process::exit(1);
    };
    println!("using commnode binary: {}", commnode.display());

    // FE (this process) -> 2 commnode processes -> 4 back-ends.
    let topo = generator::balanced(2, 2, &mut HostPool::synthetic(16)).expect("topology");
    let pending = launch_processes(topo, &commnode).expect("spawn internal tree");
    let points = pending
        .collect_attach_points(Duration::from_secs(20))
        .expect("rendezvous advertisements");
    println!("internal processes up; attach points:");
    for p in &points {
        println!("  back-end rank {} -> {}", p.rank, p.endpoint);
    }

    let backends: Vec<_> = points
        .into_iter()
        .map(|ap| {
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&ap.endpoint, ap.rank).expect("attach");
                let (pkt, stream) = be.recv().expect("request");
                let x = pkt.get(0).and_then(Value::as_i32).unwrap_or(0);
                be.send(stream, 0, "%d", vec![Value::Int32(x * ap.rank as i32)])
                    .expect("reply");
                let _ = be.recv(); // wait for shutdown
            })
        })
        .collect();

    let net = pending.wait(Duration::from_secs(20)).expect("tree ready");
    println!(
        "network ready: {} back-ends over OS processes",
        net.num_backends()
    );

    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").expect("built-in");
    let stream = net
        .new_stream(&comm, sum, SyncMode::WaitForAll)
        .expect("stream");
    stream
        .send(0, "%d", vec![Value::Int32(3)])
        .expect("broadcast");
    let result = stream
        .recv_timeout(Duration::from_secs(20))
        .expect("reduction");
    let expected: i32 = net.endpoints().iter().map(|&r| 3 * r as i32).sum();
    println!(
        "sum of 3×rank across the process tree: {} (expected {})",
        result.get(0).and_then(Value::as_i32).unwrap(),
        expected
    );

    net.shutdown();
    for b in backends {
        b.join().unwrap();
    }
    println!("done — all commnode processes reaped");
}
