//! Quickstart: the paper's Figure 2 example, line for line.
//!
//! The front-end instantiates the network from a topology
//! configuration, obtains the auto-generated broadcast communicator,
//! creates a stream bound to a floating-point-maximum filter,
//! broadcasts an initialization integer, and receives the single
//! aggregated maximum. Each back-end does a stream-anonymous receive
//! and answers with one float.
//!
//! Run with: `cargo run --example quickstart`

use mrnet::{NetworkBuilder, SyncMode, Value};
use mrnet_topology::parse_config;

const FLOAT_MAX_INIT: i32 = 17;

fn main() {
    // The topology "config file": a front-end, two internal processes,
    // four back-ends (the paper's configuration-file mechanism, §2.1).
    let config_file = "\
        fe:0 => int0:0 int1:0 ;\n\
        int0:0 => be0:0 be1:0 ;\n\
        int1:0 => be2:0 be3:0 ;\n";
    let topology = parse_config(config_file).expect("valid configuration");

    // front_end_main() — Figure 2, left.
    let deployment = NetworkBuilder::new(topology).launch().expect("instantiate");
    let net = &deployment.network;
    println!(
        "network up: {} back-ends via 2 internal processes",
        net.num_backends(),
    );

    // back_end_main() — Figure 2, right — one thread per back-end.
    let backends: Vec<_> = deployment
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                let (pkt, stream) = be.recv().expect("recv init");
                let val = pkt.get(0).and_then(Value::as_i32).expect("an int");
                if val == FLOAT_MAX_INIT {
                    let rand_float = 0.25 * be.rank() as f32 + 1.0;
                    println!("back-end {}: sending {rand_float}", be.rank());
                    be.send(stream, 0, "%f", vec![Value::Float(rand_float)])
                        .expect("send reply");
                }
            })
        })
        .collect();

    let comm = net.broadcast_communicator();
    let fmax_fil = net.registry().id_of("f_max").expect("built-in filter");
    let stream = net
        .new_stream(&comm, fmax_fil, SyncMode::WaitForAll)
        .expect("create stream");
    stream
        .send(0, "%d", vec![Value::Int32(FLOAT_MAX_INIT)])
        .expect("broadcast init");
    let result = stream.recv().expect("aggregated result");
    println!(
        "front-end: float maximum across all back-ends = {}",
        result.get(0).and_then(Value::as_f32).expect("a float")
    );

    for b in backends {
        b.join().unwrap();
    }
    net.shutdown();
    println!("done");
}
