//! STAT-style stack trace analysis over MRNet — the use case that made
//! MRNet famous beyond Paradyn: merge the call stacks of every process
//! in a (hung) parallel job into one prefix tree, grouping processes
//! into behavioral equivalence classes, with the merging done by a
//! custom filter inside the tree so the front-end sees one packet.
//!
//! Run with: `cargo run --example stack_analysis -- [processes]`

use mrnet::{FilterRegistry, NetworkBuilder, SyncMode, Value};
use mrnet_topology::{generator, HostPool};
use paradyn::stacktree::{StackMergeFilter, StackTree};

/// A deterministic "hung MPI job": most ranks wait in `mpi_waitall`,
/// a few straggle in the solver, and one is stuck in I/O — the classic
/// STAT diagnosis picture.
fn sample_stack(rank: u32) -> Vec<String> {
    let s: &[&str] = match rank {
        r if r % 17 == 3 => &["main", "solve", "smg_relax", "compute_kernel"],
        r if r % 23 == 7 => &["main", "checkpoint", "write_restart", "fsync"],
        _ => &["main", "solve", "exchange_halo", "mpi_waitall"],
    };
    s.iter().map(|f| f.to_string()).collect()
}

fn main() {
    let processes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);

    let registry = FilterRegistry::with_builtins();
    registry
        .register(StackMergeFilter::NAME, || Box::new(StackMergeFilter::new()))
        .expect("register stack merge filter");

    let topo =
        generator::balanced_for(4, processes, &mut HostPool::synthetic(4096)).expect("topology");
    let deployment = NetworkBuilder::new(topo)
        .registry(registry)
        .launch()
        .expect("instantiate");
    let net = deployment.network.clone();

    // Tool daemons: on request, sample "the application's" stack and
    // send it up as a single-process tree.
    let daemons: Vec<_> = deployment
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                if let Ok((_, sid)) = be.recv() {
                    let mut t = StackTree::new();
                    t.insert(&sample_stack(be.rank()), be.rank());
                    let _ = be.send_packet(t.to_packet(sid, 0));
                }
            })
        })
        .collect();

    let comm = net.broadcast_communicator();
    let merge = net.registry().id_of(StackMergeFilter::NAME).unwrap();
    let stream = net.new_stream(&comm, merge, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();

    let merged = StackTree::from_packet(&stream.recv().expect("merged tree")).expect("decode tree");
    println!(
        "merged {} process stacks into {} tree nodes\n",
        merged.all_ranks().len(),
        merged.len()
    );
    print!("{}", merged.render());
    println!("\nbehavioral equivalence classes:");
    for (path, ranks) in merged.classes() {
        println!("  {:>4} rank(s) at {}", ranks.len(), path.join(" > "));
    }

    net.shutdown();
    for d in daemons {
        d.join().unwrap();
    }
}
