//! The overlay over real TCP sockets, with mode-2 instantiation: the
//! internal tree comes up first, publishes per-leaf `host:port`
//! rendezvous addresses (§2.5's "information needed to connect to the
//! MRNet internal process tree"), and externally created back-ends
//! attach afterwards — the workflow used with job managers like POE.
//!
//! Run with: `cargo run --example tcp_overlay`

use std::time::Duration;

use mrnet::{Backend, NetworkBuilder, SyncMode, Value, WireTransport};
use mrnet_topology::{generator, HostPool};

fn main() {
    let topo = generator::balanced(2, 2, &mut HostPool::synthetic(64)).expect("topology");

    // Mode 2: internal processes only; every edge is a real localhost
    // TCP connection.
    let pending = NetworkBuilder::new(topo)
        .transport(WireTransport::Tcp)
        .launch_internal()
        .expect("internal tree");

    println!("internal tree up; published attach points:");
    let points = pending.attach_points().to_vec();
    for ap in &points {
        println!("  back-end rank {} -> {}", ap.rank, ap.endpoint);
    }

    // "Job-manager-created" back-ends connect from their own threads.
    let backend_threads: Vec<_> = points
        .into_iter()
        .map(|ap| {
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&ap.endpoint, ap.rank).expect("attach");
                let (pkt, stream) = be.recv().expect("request");
                let base = pkt.get(0).and_then(Value::as_i32).unwrap_or(0);
                be.send(
                    stream,
                    0,
                    "%d",
                    vec![Value::Int32(base + i32::try_from(ap.rank).unwrap())],
                )
                .expect("reply");
            })
        })
        .collect();

    let net = pending.wait(Duration::from_secs(30)).expect("all attached");
    println!("all {} back-ends attached over TCP", net.num_backends());

    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(1000)]).unwrap();
    let total = stream
        .recv_timeout(Duration::from_secs(30))
        .unwrap()
        .get(0)
        .and_then(Value::as_i32)
        .unwrap();
    let expected: i32 = net
        .endpoints()
        .iter()
        .map(|&r| 1000 + i32::try_from(r).unwrap())
        .sum();
    println!("sum reduction over TCP overlay: {total} (expected {expected})");
    assert_eq!(total, expected);

    net.shutdown();
    for t in backend_threads {
        t.join().unwrap();
    }
    println!("done");
}
