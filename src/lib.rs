//! Facade crate for the MRNet reproduction workspace.
//!
//! Re-exports the public APIs of all member crates so that examples and
//! integration tests can use a single dependency.
#![forbid(unsafe_code)]

pub use mrnet;
pub use mrnet_filters as filters;
pub use mrnet_packet as packet;
pub use mrnet_sim as sim;
pub use mrnet_topology as topology;
pub use mrnet_transport as transport;
pub use paradyn;
