//! Workspace-level integration tests: pipelines that span every crate
//! through the facade — configuration text to live tree to custom
//! filters, and consistency between the analytical model, the
//! simulator, and the real threaded implementation.

use std::time::Duration;

use mrnet_repro::mrnet::{self, simulate, NetworkBuilder, SyncMode, Value};
use mrnet_repro::packet::{decode_packet, encode_packet, PacketBuilder};
use mrnet_repro::paradyn::{self, paradyn_registry, run_sampling, run_startup, Daemon};
use mrnet_repro::sim::{LaunchParams, LogGpParams};
use mrnet_repro::topology::{self, generator, parse_config, write_config, HostPool, LogP};

#[test]
fn config_text_to_live_network_to_result() {
    // A user-authored configuration file drives a real tree.
    let cfg = "\
        fe:0 => a:0 b:0 ;\n\
        a:0 => a:1 a:2 a:3 ;\n\
        b:0 => b:1 b:2 b:3 ;\n";
    let topo = parse_config(cfg).unwrap();
    // Round-trips through the writer too.
    let topo = parse_config(&write_config(&topo)).unwrap();
    assert_eq!(topo.num_backends(), 6);

    let dep = NetworkBuilder::new(topo).launch().unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("uld_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(1, "%d", vec![Value::Int32(0)]).unwrap();
    let threads: Vec<_> = dep
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                let (_, sid) = be.recv().unwrap();
                be.send(sid, 1, "%uld", vec![Value::UInt64(10)]).unwrap();
            })
        })
        .collect();
    let result = stream.recv_timeout(Duration::from_secs(20)).unwrap();
    assert_eq!(result.get(0).unwrap().as_u64(), Some(60));
    net.shutdown();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn analytical_model_and_simulator_agree_symbolically() {
    // The topology crate's closed-form LogP analysis and the
    // simulator's per-interface occupancy model must agree on
    // single-operation broadcast latency when G = 0 and jitter = 0.
    let mut pool = HostPool::synthetic(256);
    let topo = generator::balanced(4, 2, &mut pool).unwrap();
    let analytic = topology::broadcast_latency(
        &topo,
        &LogP {
            latency: 2.0,
            overhead: 0.5,
            gap: 1.0,
            gap_per_byte: 0.0,
        },
    );
    let simulated = simulate::broadcast_latency(
        &topo,
        LogGpParams {
            latency: 2.0,
            overhead: 0.5,
            gap: 1.0,
            big_gap: 0.0,
        },
        1,
    );
    // The closed form charges k·g per level before the last child's
    // message; the simulator schedules sends at 0, g, 2g, … — one gap
    // less per level. Both grow identically with scale; check they are
    // within one gap per level of each other.
    let depth = topo.depth() as f64;
    assert!(
        (analytic - simulated).abs() <= depth * 1.0 + 1e-9,
        "analytic {analytic} vs simulated {simulated}"
    );
}

#[test]
fn simulated_instantiation_ordering_matches_threaded_reality() {
    // The simulator says trees instantiate faster than flat at scale;
    // verify the real threaded implementation agrees in ordering at a
    // laptop-friendly size.
    let params = LaunchParams::blue_pacific();
    let logp = LogGpParams::blue_pacific();
    let flat = generator::flat(64, &mut HostPool::synthetic(256)).unwrap();
    let tree = generator::balanced_for(4, 64, &mut HostPool::synthetic(256)).unwrap();
    let sim_flat = simulate::instantiation_latency(&flat, params, logp, 1);
    let sim_tree = simulate::instantiation_latency(&tree, params, logp, 1);
    assert!(sim_flat > sim_tree);

    // Threaded: both instantiate fine; measure wall-clock to confirm
    // neither blows up (ordering at this scale is noise-dominated, so
    // only sanity is asserted).
    let t0 = std::time::Instant::now();
    let dep = mrnet::launch_local(flat).unwrap();
    let flat_elapsed = t0.elapsed();
    dep.network.shutdown();
    let t0 = std::time::Instant::now();
    let dep = mrnet::launch_local(tree).unwrap();
    let tree_elapsed = t0.elapsed();
    dep.network.shutdown();
    assert!(flat_elapsed < Duration::from_secs(30));
    assert!(tree_elapsed < Duration::from_secs(30));
}

#[test]
fn packet_layer_is_usable_through_facade() {
    let pkt = PacketBuilder::new(3, 9).push(1.5f64).push("x").build();
    let decoded = decode_packet(encode_packet(&pkt)).unwrap();
    assert_eq!(decoded, pkt);
}

#[test]
fn paradyn_tool_runs_against_custom_topology_text() {
    // Whole-stack: config text -> tree -> Paradyn start-up + sampling.
    let cfg = "fe:0 => i:0 i:1 ;\ni:0 => d:0 d:1 ;\ni:1 => d:2 d:3 ;\n";
    let topo = parse_config(cfg).unwrap();
    let dep = NetworkBuilder::new(topo)
        .registry(paradyn_registry())
        .launch()
        .unwrap();
    let net = dep.network.clone();
    let exe = paradyn::app::Executable::synthetic("mini", 20, 2, 3);
    let daemons: Vec<_> = dep
        .backends
        .into_iter()
        .enumerate()
        .map(|(i, be)| {
            let exe = exe.clone();
            std::thread::spawn(move || {
                let d = Daemon::new(be, exe, format!("d{i}"), i as u32);
                d.serve(2, 5.0, Duration::from_millis(1500))
            })
        })
        .collect();
    let mdl_doc = paradyn::mdl::to_mdl(&paradyn::mdl::standard_metrics(2));
    let outcome = run_startup(&net, &mdl_doc, 2).unwrap();
    assert_eq!(outcome.code_classes.len(), 1);
    assert_eq!(outcome.code_resources.len(), 22);
    let (stats, _s) = run_sampling(&net, 2, Duration::from_millis(1500)).unwrap();
    assert!(stats.received > 0);
    net.shutdown();
    for d in daemons {
        let _ = d.join().unwrap();
    }
}

#[test]
fn filters_compose_identically_offline_and_online() {
    // The same histogram-style aggregation done (a) directly on the
    // filter object and (b) through a live tree must agree.
    use mrnet_repro::filters::{FilterContext, ScalarFilter, ScalarOp, Transform};
    use mrnet_repro::packet::TypeCode;

    let values: Vec<i32> = (0..9).map(|i| i * 3 % 7).collect();

    // Offline: one flat fold.
    let mut offline = ScalarFilter::new(ScalarOp::Max, TypeCode::Int32).unwrap();
    let wave: Vec<_> = values
        .iter()
        .map(|&v| PacketBuilder::new(1, 0).push(v).build())
        .collect();
    let expected = offline
        .transform(wave, &FilterContext::new(1, 0, 9))
        .unwrap()[0]
        .get(0)
        .unwrap()
        .as_i32()
        .unwrap();

    // Online: 3x3 tree.
    let topo = generator::balanced(3, 2, &mut HostPool::synthetic(64)).unwrap();
    let dep = mrnet::launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let max = net.registry().id_of("d_max").unwrap();
    let stream = net.new_stream(&comm, max, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    let threads: Vec<_> = dep
        .backends
        .into_iter()
        .zip(values)
        .map(|(be, v)| {
            std::thread::spawn(move || {
                let (_, sid) = be.recv().unwrap();
                be.send(sid, 0, "%d", vec![Value::Int32(v)]).unwrap();
            })
        })
        .collect();
    let online = stream
        .recv_timeout(Duration::from_secs(20))
        .unwrap()
        .get(0)
        .unwrap()
        .as_i32()
        .unwrap();
    assert_eq!(online, expected);
    net.shutdown();
    for t in threads {
        t.join().unwrap();
    }
}
