//! The paper's quantitative claims, asserted as tests.
//!
//! Each test reproduces one claim from the SC'03 evaluation at full
//! paper scale on the simulated substrate (absolute calibration) or
//! checks the structural property behind it. These are the
//! "EXPERIMENTS.md in executable form".

use mrnet_repro::mrnet::simulate;
use mrnet_repro::paradyn::model::{startup_total, LoadModel, StartupModel};
use mrnet_repro::paradyn::skew::{direct_skew, mrnet_skew, SkewParams};
use mrnet_repro::sim::{LaunchParams, LogGpParams};
use mrnet_repro::topology::{fig4_comparison, generator, HostPool, LogP, Topology};

fn flat(n: usize) -> Topology {
    generator::flat(n, &mut HostPool::synthetic(2048)).unwrap()
}

fn tree(f: usize, n: usize) -> Topology {
    generator::balanced_for(f, n, &mut HostPool::synthetic(2048)).unwrap()
}

#[test]
fn claim_fig4_balanced_broadcast_is_8g_4o_2l_with_4g_interval() {
    let row = fig4_comparison(&LogP {
        latency: 7.0,
        overhead: 3.0,
        gap: 2.0,
        gap_per_byte: 0.0,
    });
    assert!((row.balanced_latency - (8.0 * 2.0 + 4.0 * 3.0 + 2.0 * 7.0)).abs() < 1e-9);
    assert!((row.balanced_interval - 4.0 * 2.0).abs() < 1e-9);
    assert!((row.unbalanced_interval - 6.0 * 2.0).abs() < 1e-9);
}

#[test]
fn claim_fig7a_flat_instantiation_800s_trees_flat() {
    let params = LaunchParams::blue_pacific();
    let logp = LogGpParams::blue_pacific();
    let f = simulate::instantiation_latency(&flat(512), params, logp, 0);
    assert!((650.0..950.0).contains(&f), "flat-512: {f} (paper ~800 s)");
    for fanout in [4, 8] {
        let t = simulate::instantiation_latency(&tree(fanout, 512), params, logp, 0);
        assert!(t < 60.0, "{fanout}-way-512: {t} (paper: tens of seconds)");
    }
}

#[test]
fn claim_fig7b_flat_roundtrip_1_4s_trees_far_below() {
    let logp = LogGpParams::blue_pacific();
    let f = simulate::roundtrip_latency(&flat(512), logp, simulate::SMALL_PACKET);
    assert!(
        (1.0..1.8).contains(&f),
        "flat-512 round trip {f} (paper ~1.4 s)"
    );
    let t = simulate::roundtrip_latency(&tree(8, 512), logp, simulate::SMALL_PACKET);
    assert!(f > 10.0 * t, "trees must be an order faster ({f} vs {t})");
}

#[test]
fn claim_fig7c_tree_throughput_tens_of_ops_flat_collapses() {
    let logp = LogGpParams::blue_pacific();
    let t8 = simulate::reduction_throughput(&tree(8, 512), logp, simulate::SMALL_PACKET, 40);
    assert!(
        (40.0..160.0).contains(&t8),
        "8-way-512 throughput {t8} (paper ~70)"
    );
    let f = simulate::reduction_throughput(&flat(512), logp, simulate::SMALL_PACKET, 40);
    assert!(f < 5.0, "flat-512 throughput {f} (paper: single digits)");
    // Throughput of trees stays roughly constant with scale.
    let t8_64 = simulate::reduction_throughput(&tree(8, 64), logp, simulate::SMALL_PACKET, 40);
    assert!((t8 - t8_64).abs() / t8_64 < 0.5);
}

#[test]
fn claim_fig8a_startup_3_4x_faster_with_8way_at_512() {
    let model = StartupModel::default();
    let no = startup_total(&flat(512), &model);
    let yes = startup_total(&tree(8, 512), &model);
    let speedup = no / yes;
    assert!(
        (2.8..4.2).contains(&speedup),
        "start-up speedup {speedup} (paper: 3.4x)"
    );
    assert!(
        (55.0..95.0).contains(&no),
        "no-MRNet total {no} (paper ~70 s)"
    );
}

#[test]
fn claim_fig8b_aggregation_activities_improve_others_do_not() {
    use mrnet_repro::paradyn::model::startup_latencies;
    use mrnet_repro::paradyn::Activity;
    let model = StartupModel::default();
    let no: std::collections::HashMap<_, _> =
        startup_latencies(&flat(512), &model).into_iter().collect();
    let yes: std::collections::HashMap<_, _> = startup_latencies(&tree(8, 512), &model)
        .into_iter()
        .collect();
    for act in Activity::ALL {
        if act.uses_aggregation() {
            assert!(yes[&act] < no[&act] / 2.0, "{}", act.name());
        } else {
            assert!((yes[&act] - no[&act]).abs() < 0.5, "{}", act.name());
        }
    }
}

#[test]
fn claim_skew_mrnet_10_5_percent_and_beats_direct() {
    let topo = generator::balanced(4, 3, &mut HostPool::synthetic(256)).unwrap();
    let mut mrnet_avg = 0.0;
    let mut direct_avg = 0.0;
    const SEEDS: u64 = 5;
    for seed in 0..SEEDS {
        let params = SkewParams {
            seed,
            ..SkewParams::default()
        };
        mrnet_avg += mrnet_skew(&topo, &params).average_error_percent() / SEEDS as f64;
        direct_avg += direct_skew(&topo, &params).average_error_percent() / SEEDS as f64;
    }
    // Paper: 10.5% (MRNet) vs 17.5% (direct).
    assert!(
        (5.0..20.0).contains(&mrnet_avg),
        "MRNet skew error {mrnet_avg}% (paper 10.5%)"
    );
    assert!(
        mrnet_avg < direct_avg,
        "MRNet ({mrnet_avg}%) must be at least as accurate as direct ({direct_avg}%)"
    );
}

#[test]
fn claim_fig9_checkpoints() {
    let m = LoadModel::default();
    // "when collecting data from only 64 daemons for 32 metrics per
    // daemon without MRNet, the Paradyn front-end processed the data
    // at only about 60% of the rate at which it was generated".
    let f = m.fraction_of_offered_load(64, 32, None);
    assert!((0.45..0.7).contains(&f), "64x32 flat {f} (paper ~0.6)");
    // "With 256 daemons and 32 metrics, the front-end processed data
    // at a rate of less than 5% of the offered load."
    let f = m.fraction_of_offered_load(256, 32, None);
    assert!(f < 0.05 + 0.01, "256x32 flat {f} (paper <5%)");
    // "With four-, eight-, and sixteen-way MRNet fan-outs, the
    // front-end was able to process the entire offered load for all
    // configurations we tested."
    for fanout in [4, 8, 16] {
        for d in [4, 16, 64, 128, 256] {
            for metrics in [1, 8, 16, 32] {
                assert_eq!(m.fraction_of_offered_load(d, metrics, Some(fanout)), 1.0);
            }
        }
    }
}
